// google-benchmark microbenchmarks of the core components: simulator
// evaluation throughput, LHS generation, RF training, GP fit/predict
// scaling, acquisition optimization, and L-BFGS-B.
#include <benchmark/benchmark.h>

#include "core/parameter_selection.h"
#include "gp/acquisition.h"
#include "gp/gaussian_process.h"
#include "gp/rff_gp.h"
#include "ml/random_forest.h"
#include "opt/lbfgsb.h"
#include "sampling/latin_hypercube.h"
#include "sparksim/objective.h"

using namespace robotune;

namespace {

const sparksim::ConfigSpace& space() {
  static const auto s = sparksim::spark24_config_space();
  return s;
}

void BM_SimulatorEvaluate(benchmark::State& state) {
  sparksim::SparkObjective objective(
      sparksim::ClusterSpec{},
      sparksim::make_workload(sparksim::WorkloadKind::kPageRank, 1), space(),
      42);
  Rng rng(1);
  std::vector<double> unit(space().size());
  for (auto _ : state) {
    for (auto& u : unit) u = rng.uniform();
    benchmark::DoNotOptimize(objective.evaluate(unit, 480.0).value_s);
  }
}
BENCHMARK(BM_SimulatorEvaluate);

void BM_LatinHypercube(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampling::latin_hypercube(n, 44, rng));
  }
}
BENCHMARK(BM_LatinHypercube)->Arg(20)->Arg(100)->Arg(200);

void BM_RandomForestFit(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  ml::Dataset data(44);
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<double> x(44);
    for (auto& v : x) v = rng.uniform();
    data.add_row(x, 10 * x[0] + 5 * x[1] * x[2] + rng.normal(0, 0.5));
  }
  for (auto _ : state) {
    ml::ForestOptions fo;
    fo.num_trees = 100;
    fo.parallel = false;
    ml::RandomForest rf(fo, 7);
    rf.fit(data);
    benchmark::DoNotOptimize(rf.num_trees());
  }
}
BENCHMARK(BM_RandomForestFit)->Arg(100)->Arg(200);

void BM_GpFit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> p(8);
    for (auto& v : p) v = rng.uniform();
    x.push_back(p);
    y.push_back(p[0] * p[1] + std::sin(5 * p[2]));
  }
  for (auto _ : state) {
    gp::GaussianProcess model(gp::ard_kernel(8), gp::GpOptions{false}, 1);
    model.fit(x, y);
    benchmark::DoNotOptimize(model.log_marginal_likelihood());
  }
}
BENCHMARK(BM_GpFit)->Arg(20)->Arg(50)->Arg(100);

void BM_GpPredict(benchmark::State& state) {
  Rng rng(5);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    std::vector<double> p(8);
    for (auto& v : p) v = rng.uniform();
    x.push_back(p);
    y.push_back(p[0]);
  }
  gp::GaussianProcess model(gp::ard_kernel(8), gp::GpOptions{false}, 1);
  model.fit(x, y);
  std::vector<double> q(8, 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(q).mean);
  }
}
BENCHMARK(BM_GpPredict);

void BM_GpPredictBatch(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    std::vector<double> p(8);
    for (auto& v : p) v = rng.uniform();
    x.push_back(p);
    y.push_back(p[0]);
  }
  gp::GaussianProcess model(gp::ard_kernel(8), gp::GpOptions{false}, 1);
  model.fit(x, y);
  std::vector<std::vector<double>> queries;
  for (std::size_t i = 0; i < batch; ++i) {
    std::vector<double> q(8);
    for (auto& v : q) v = rng.uniform();
    queries.push_back(q);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict_batch(queries).front().mean);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_GpPredictBatch)->Arg(16)->Arg(64)->Arg(256);

void BM_GpPredictWithGradient(benchmark::State& state) {
  Rng rng(5);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    std::vector<double> p(8);
    for (auto& v : p) v = rng.uniform();
    x.push_back(p);
    y.push_back(p[0]);
  }
  gp::GaussianProcess model(gp::ard_kernel(8), gp::GpOptions{false}, 1);
  model.fit(x, y);
  std::vector<double> q(8, 0.4);
  gp::GpWorkspace ws;
  gp::PredictGradient pg;
  for (auto _ : state) {
    model.predict_with_gradient(q, ws, pg);
    benchmark::DoNotOptimize(pg.dmean[0]);
  }
}
BENCHMARK(BM_GpPredictWithGradient);

// One constant-liar cycle: plant a fantasy with the rank-1 add, purge it
// with the LIFO remove.  The model is restored bit-identically, so the
// loop never refits — exactly the q > 1 engine pattern (DESIGN.md §15).
void BM_GpAddRemovePoint(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> p(8);
    for (auto& v : p) v = rng.uniform();
    x.push_back(p);
    y.push_back(p[0] * p[1] + std::sin(5 * p[2]));
  }
  gp::GaussianProcess model(gp::ard_kernel(8), gp::GpOptions{false}, 1);
  model.fit(x, y);
  std::vector<double> fantasy(8, 0.37);
  for (auto _ : state) {
    model.add_point(fantasy, -1.0);
    model.remove_point(model.num_points() - 1);
    benchmark::DoNotOptimize(model.num_points());
  }
}
BENCHMARK(BM_GpAddRemovePoint)->Arg(100)->Arg(200)->Arg(500);

void BM_RffFit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> p(8);
    for (auto& v : p) v = rng.uniform();
    x.push_back(p);
    y.push_back(p[0] * p[1] + std::sin(5 * p[2]));
  }
  gp::MaternHyperparams hypers;
  hypers.length_scales.assign(8, 0.5);
  // Fresh model per iteration, like the engine's fit_rff: the timing
  // includes the (cheap, deterministic) spectral draw.
  for (auto _ : state) {
    gp::RffGp model(gp::RffOptions{256, 0x5eed});
    model.fit(x, y, hypers);
    benchmark::DoNotOptimize(model.num_points());
  }
}
BENCHMARK(BM_RffFit)->Arg(100)->Arg(500)->Arg(1000);

void BM_RffPredict(benchmark::State& state) {
  Rng rng(5);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    std::vector<double> p(8);
    for (auto& v : p) v = rng.uniform();
    x.push_back(p);
    y.push_back(p[0]);
  }
  gp::MaternHyperparams hypers;
  hypers.length_scales.assign(8, 0.5);
  gp::RffGp model(gp::RffOptions{256, 0x5eed});
  model.fit(x, y, hypers);
  std::vector<double> q(8, 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(q).mean);
  }
}
BENCHMARK(BM_RffPredict);

void BM_AcquisitionOptimize(benchmark::State& state) {
  Rng rng(6);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 40; ++i) {
    std::vector<double> p(6);
    for (auto& v : p) v = rng.uniform();
    x.push_back(p);
    y.push_back(p[0] + p[1] * p[2]);
  }
  gp::GaussianProcess model(gp::ard_kernel(6), gp::GpOptions{false}, 1);
  model.fit(x, y);
  // range(0): 1 = analytic gradients (default hot path), 0 = numeric
  // central differences (the pre-§8 baseline, kept for comparison).
  gp::AcquisitionOptimizerOptions options;
  options.analytic_gradients = state.range(0) != 0;
  options.workers = 1;  // sequential: isolates the gradient-path cost
  for (auto _ : state) {
    benchmark::DoNotOptimize(gp::optimize_acquisition(
        model, gp::AcquisitionKind::kEI, 6, rng, {}, options));
  }
}
BENCHMARK(BM_AcquisitionOptimize)
    ->Arg(1)
    ->Arg(0)
    ->ArgNames({"analytic"});

void BM_LbfgsbRosenbrock(benchmark::State& state) {
  const opt::Objective rosen = [](std::span<const double> x,
                                  std::span<double> grad) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    if (!grad.empty()) {
      grad[0] = -2.0 * a - 400.0 * x[0] * b;
      grad[1] = 200.0 * b;
    }
    return a * a + 100.0 * b * b;
  };
  opt::Bounds bounds;
  bounds.lower = {-2, -2};
  bounds.upper = {2, 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        opt::minimize(rosen, std::vector<double>{-1.2, 1.0}, bounds));
  }
}
BENCHMARK(BM_LbfgsbRosenbrock);

}  // namespace

BENCHMARK_MAIN();
