// Shared helpers for the reproduction benches: environment-variable knobs,
// tuning-session drivers, and table formatting.
//
// Every bench prints the rows/series of one of the paper's tables or
// figures.  Absolute numbers come from the simulator, so the *shape*
// (who wins, by roughly what factor) is what should be compared against
// the paper; EXPERIMENTS.md records both sides.
//
// Environment knobs (all benches):
//   ROBOTUNE_BENCH_REPS    repetitions per (workload, dataset)   [default 2]
//   ROBOTUNE_BENCH_BUDGET  evaluation budget per tuning session  [default 100]
//   ROBOTUNE_BENCH_JOBS    worker threads for the comparison grid
//                          (0 = hardware concurrency)            [default 1]
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/robotune.h"
#include "sparksim/objective.h"
#include "tuners/bestconfig.h"
#include "tuners/gunther.h"
#include "tuners/random_search.h"
#include "tuners/tuner.h"

namespace robotune::bench {

inline int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoi(v);
}

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atof(v);
}

inline int bench_reps() { return env_int("ROBOTUNE_BENCH_REPS", 2); }
inline int bench_budget() { return env_int("ROBOTUNE_BENCH_BUDGET", 100); }
inline int bench_jobs() { return env_int("ROBOTUNE_BENCH_JOBS", 1); }

inline sparksim::SparkObjective make_objective(sparksim::WorkloadKind kind,
                                               int dataset,
                                               std::uint64_t seed) {
  return sparksim::SparkObjective(sparksim::ClusterSpec::paper_testbed(),
                                  sparksim::make_workload(kind, dataset),
                                  sparksim::spark24_config_space(), seed);
}

/// One tuning session outcome.
struct SessionResult {
  double best_s = 0.0;
  double search_cost_s = 0.0;
  tuners::TuningResult full;
};

/// All four tuners in the paper's order.  ROBOTune instances are stateful
/// (selection cache + memo buffer), so the caller owns one per experiment.
inline std::vector<std::string> tuner_names() {
  return {"ROBOTune", "BestConfig", "Gunther", "RS"};
}

struct ComparisonCell {
  std::vector<double> best;  ///< per repetition
  std::vector<double> cost;
};

/// Per (workload, dataset) -> per tuner results of the Fig. 3/4 grid.
using ComparisonGrid =
    std::map<std::string, std::map<std::string, ComparisonCell>>;

/// Runs the full §5.2/§5.3 comparison: every workload and dataset, each
/// tuner, `reps` repetitions.  ROBOTune keeps one framework instance per
/// workload so its caches amortize across datasets, mirroring the paper's
/// 15-runs-per-workload protocol (datasets are tuned in order D1, D2, D3).
///
/// Workloads are independent (each has its own ROBOTune instance), so the
/// grid parallelizes across them on ROBOTUNE_BENCH_JOBS workers.  Every
/// session keeps its own seed regardless of scheduling, and per-workload
/// results are merged in workload order, so the grid is identical for any
/// job count.
inline ComparisonGrid run_comparison(int budget, int reps,
                                     std::uint64_t base_seed = 1000) {
  const auto workloads = sparksim::all_workloads();
  std::vector<ComparisonGrid> partial(workloads.size());
  const auto run_workload = [&](std::size_t wi) {
    const auto kind = workloads[wi];
    core::RoboTune robotune;  // caches shared across this workload's runs
    for (int dataset = 1; dataset <= 3; ++dataset) {
      const std::string key =
          sparksim::short_name(kind) + "-D" + std::to_string(dataset);
      for (int rep = 0; rep < reps; ++rep) {
        const std::uint64_t seed =
            base_seed + static_cast<std::uint64_t>(dataset * 101 + rep);
        // Fresh baselines every session (they are stateless).
        tuners::BestConfig bestconfig;
        tuners::Gunther gunther;
        tuners::RandomSearch rs;
        std::vector<std::pair<std::string, tuners::Tuner*>> tuners_list = {
            {"ROBOTune", &robotune},
            {"BestConfig", &bestconfig},
            {"Gunther", &gunther},
            {"RS", &rs}};
        for (auto& [name, tuner] : tuners_list) {
          auto objective = make_objective(kind, dataset, seed * 7919);
          const auto result = tuner->tune(objective, budget, seed);
          auto& cell = partial[wi][key][name];
          cell.best.push_back(result.found_any() ? result.best_value_s()
                                                 : 480.0);
          cell.cost.push_back(result.search_cost_s);
        }
      }
    }
  };
  const int jobs = bench_jobs();
  if (jobs == 1) {
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) run_workload(wi);
  } else {
    ThreadPool pool(static_cast<std::size_t>(jobs < 0 ? 0 : jobs));
    pool.parallel_for(workloads.size(), run_workload);
  }
  ComparisonGrid grid;
  for (auto& part : partial) {
    for (auto& [key, cells] : part) grid[key] = std::move(cells);
  }
  return grid;
}

inline double mean_of(const std::vector<double>& xs) {
  double s = 0.0;
  for (double x : xs) s += x;
  return xs.empty() ? 0.0 : s / static_cast<double>(xs.size());
}

/// Prints a grid of per-tuner values scaled to RS (the Fig. 3/4 format).
inline void print_scaled_grid(const ComparisonGrid& grid, bool use_cost,
                              const char* metric) {
  std::printf("%-8s", "dataset");
  for (const auto& name : tuner_names()) std::printf("%12s", name.c_str());
  std::printf("\n");
  std::map<std::string, std::vector<double>> scaled_by_tuner;
  for (const auto& [key, cells] : grid) {
    const auto rs_it = cells.find("RS");
    const double rs_val = mean_of(use_cost ? rs_it->second.cost
                                           : rs_it->second.best);
    std::printf("%-8s", key.c_str());
    for (const auto& name : tuner_names()) {
      const auto& cell = cells.at(name);
      const double val = mean_of(use_cost ? cell.cost : cell.best);
      const double scaled = val / rs_val;
      scaled_by_tuner[name].push_back(scaled);
      std::printf("%12.3f", scaled);
    }
    std::printf("\n");
  }
  std::printf("%-8s", "geomean");
  for (const auto& name : tuner_names()) {
    double logsum = 0.0;
    for (double v : scaled_by_tuner[name]) logsum += std::log(v);
    std::printf("%12.3f",
                std::exp(logsum / static_cast<double>(
                                      scaled_by_tuner[name].size())));
  }
  std::printf("\n(%s scaled to RS; < 1.0 means better than Random Search)\n",
              metric);
}

}  // namespace robotune::bench
