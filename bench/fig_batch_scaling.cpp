// Batch-BO scaling study: wall-clock speedup and best-found quality of
// ROBOTune's constant-liar batching (BoOptions::batch_size = q) at
// q in {1, 2, 4, 8}, each batch evaluated on q scheduler workers.
//
// The simulator itself is microseconds per run, so cluster-run latency is
// emulated: the scheduler sleeps ROBOTUNE_BENCH_EVAL_LATENCY wall-seconds
// per simulated cost second of each evaluation, on the worker that runs
// it.  Sleeps overlap across workers exactly like real concurrent trial
// runs, so the measured speedup is the speedup a q-wide cluster frontend
// would see — while results stay bit-identical to latency 0.
//
// Parameter selection (identical at every q) is primed into the cache
// up front so the timed region is the BO session the batching actually
// accelerates.
//
// Emits a table to stdout and machine-readable JSON to
// bench_results/fig_batch_scaling.json (run from the repo root).
//
// Environment knobs:
//   ROBOTUNE_BENCH_BUDGET        evaluation budget        [default 100]
//   ROBOTUNE_BENCH_EVAL_LATENCY  wall s per simulated s   [default 0.001]
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "bench/harness.h"
#include "exec/eval_scheduler.h"

using namespace robotune;

int main() {
  const int budget = bench::bench_budget();
  const double latency =
      bench::env_double("ROBOTUNE_BENCH_EVAL_LATENCY", 0.001);
  const std::vector<int> batch_sizes = {1, 2, 4, 8};
  const auto kind = sparksim::WorkloadKind::kPageRank;
  const int dataset = 1;
  const std::uint64_t seed = 11;

  std::printf(
      "=== Batch BO scaling on PR-D1 (budget=%d, latency=%.4f s/s) ===\n",
      budget, latency);

  // One shared parameter selection, computed exactly as RoboTune would
  // (same seed mixing), so every q starts from the same subspace without
  // re-paying the selection pipeline inside the timed region.
  auto selection_objective = bench::make_objective(kind, dataset, seed * 7919);
  core::SelectionOptions sel;
  sel.seed ^= seed;
  const auto selection = core::select_parameters(
      selection_objective, sparksim::spark24_joint_parameter_groups(), sel);
  const std::string workload_key = sparksim::to_string(kind);

  struct Row {
    int q = 0;
    double wall_s = 0.0;
    double best_s = 0.0;
    std::size_t evals = 0;
  };
  std::vector<Row> rows;
  for (int q : batch_sizes) {
    core::RoboTuneOptions options;
    options.bo.batch_size = q;
    core::RoboTune tuner(options);
    tuner.selection_cache().store(workload_key, selection.selected);

    exec::SchedulerOptions sched;
    sched.parallelism = q;
    sched.emulate_latency_per_cost_s = latency;
    exec::EvalScheduler scheduler(sched);

    auto objective = bench::make_objective(kind, dataset, seed * 7919);
    const auto start = std::chrono::steady_clock::now();
    const auto report = tuner.tune_report(objective, budget, seed, nullptr,
                                          nullptr, &scheduler);
    const auto elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    Row row;
    row.q = q;
    row.wall_s = elapsed;
    row.best_s = report.tuning.found_any() ? report.tuning.best_value_s()
                                           : 480.0;
    row.evals = report.tuning.history.size();
    rows.push_back(row);
  }

  const double base_wall = rows.front().wall_s;
  const double base_best = rows.front().best_s;
  std::printf("%-6s%12s%12s%12s%12s\n", "q", "wall s", "speedup",
              "best s", "quality");
  for (const auto& row : rows) {
    std::printf("%-6d%12.2f%12.2f%12.2f%12.3f\n", row.q, row.wall_s,
                base_wall / row.wall_s, row.best_s, row.best_s / base_best);
  }
  std::printf("(speedup vs q=1; quality = best/best(q=1), < 1.0 better)\n");

  std::filesystem::create_directories("bench_results");
  const char* path = "bench_results/fig_batch_scaling.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(f,
               "{\n  \"workload\": \"PR-D1\",\n  \"budget\": %d,\n"
               "  \"eval_latency_s\": %.6f,\n  \"rows\": [\n",
               budget, latency);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    std::fprintf(f,
                 "    {\"q\": %d, \"workers\": %d, \"wall_s\": %.3f, "
                 "\"speedup_vs_q1\": %.3f, \"best_s\": %.3f, "
                 "\"quality_vs_q1\": %.4f, \"evals\": %zu}%s\n",
                 row.q, row.q, row.wall_s, base_wall / row.wall_s,
                 row.best_s, row.best_s / base_best, row.evals,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
  return 0;
}
