// Figure 5 reproduction: distribution of the execution times of the
// configurations each tuner samples during a session, for PR and KM.
//
// Paper's claims: ROBOTune's distribution centers on a low median (the
// other tuners run many poor configurations); for PR the baselines'
// medians are ~1.5x ROBOTune's; KM shows a long tail where the baseline
// p90 is 3.4-4.2x ROBOTune's (cache-evicting configurations that BO
// learns to avoid).
#include <cstdio>
#include <memory>

#include "bench/harness.h"
#include "common/statistics.h"

using namespace robotune;

int main() {
  const int budget = bench::bench_budget();
  std::printf(
      "=== Figure 5: distribution of sampled execution times (budget=%d) "
      "===\n",
      budget);
  for (auto kind :
       {sparksim::WorkloadKind::kPageRank, sparksim::WorkloadKind::kKMeans}) {
    std::printf("\n-- %s-D1 --\n", sparksim::short_name(kind).c_str());
    std::printf("%-12s %8s %8s %8s %8s %8s\n", "tuner", "p25", "median",
                "p75", "p90", "max");
    std::map<std::string, stats::Summary> summaries;
    core::RoboTune robotune;
    tuners::BestConfig bestconfig;
    tuners::Gunther gunther;
    tuners::RandomSearch rs;
    std::vector<std::pair<std::string, tuners::Tuner*>> tuners_list = {
        {"ROBOTune", &robotune},
        {"BestConfig", &bestconfig},
        {"Gunther", &gunther},
        {"RS", &rs}};
    for (auto& [name, tuner] : tuners_list) {
      std::vector<double> times;
      for (int rep = 0; rep < bench::bench_reps(); ++rep) {
        auto objective = bench::make_objective(
            kind, 1, 9000 + static_cast<std::uint64_t>(rep));
        const auto result =
            tuner->tune(objective, budget,
                        77 + static_cast<std::uint64_t>(rep));
        const auto sampled = result.sampled_times();
        times.insert(times.end(), sampled.begin(), sampled.end());
      }
      const auto s = stats::summarize(times);
      summaries[name] = s;
      std::printf("%-12s %8.1f %8.1f %8.1f %8.1f %8.1f\n", name.c_str(),
                  s.p25, s.median, s.p75, s.p90, s.max);
    }
    const auto& rt = summaries["ROBOTune"];
    std::printf("median ratio vs ROBOTune:  BestConfig %.2fx  Gunther %.2fx"
                "  RS %.2fx\n",
                summaries["BestConfig"].median / rt.median,
                summaries["Gunther"].median / rt.median,
                summaries["RS"].median / rt.median);
    std::printf("p90 ratio vs ROBOTune:     BestConfig %.2fx  Gunther %.2fx"
                "  RS %.2fx\n",
                summaries["BestConfig"].p90 / rt.p90,
                summaries["Gunther"].p90 / rt.p90,
                summaries["RS"].p90 / rt.p90);
  }
  return 0;
}
