// Second simulator suite: directional/mechanism tests — every documented
// configuration effect moves execution time the way the underlying Spark
// mechanism says it should (DESIGN.md §9 inventory).
#include <gtest/gtest.h>

#include <cmath>

#include "sparksim/cluster.h"
#include "sparksim/engine.h"
#include "sparksim/objective.h"
#include "sparksim/param_space.h"
#include "sparksim/workload.h"

namespace robotune::sparksim {
namespace {

const ConfigSpace& space() {
  static const ConfigSpace s = spark24_config_space();
  return s;
}

DecodedConfig base_config() {
  auto v = space().defaults();
  const auto set = [&](const char* n, double val) {
    v[*space().index_of(n)] = val;
  };
  set("spark.executor.cores", 8);
  set("spark.executor.memory.mb", 32768);
  set("spark.memory.fraction", 0.6);
  set("spark.default.parallelism", 320);
  return v;
}

double run_s(const DecodedConfig& values, WorkloadKind kind = WorkloadKind::kPageRank,
             int dataset = 1) {
  const auto config = SparkConfig::from_decoded(space(), values);
  EngineOptions options;
  options.run_noise_sigma = 0.0;
  const auto r = simulate(ClusterSpec{}, make_workload(kind, dataset),
                          config, 1, options);
  EXPECT_EQ(r.status, RunStatus::kOk);
  return r.seconds;
}

SimMetrics run_metrics(const DecodedConfig& values,
                       WorkloadKind kind = WorkloadKind::kPageRank) {
  const auto config = SparkConfig::from_decoded(space(), values);
  EngineOptions options;
  options.run_noise_sigma = 0.0;
  return simulate(ClusterSpec{}, make_workload(kind, 1), config, 1, options)
      .metrics;
}

DecodedConfig with(const DecodedConfig& base, const char* name,
                   double value) {
  auto v = base;
  v[*space().index_of(name)] = value;
  return v;
}

// --------------------------------------------------- shuffle mechanisms ----

TEST(EffectsTest, ShuffleCompressionSavesDiskTimeOnShuffleHeavyWork) {
  const auto on = base_config();  // default compress=true
  const auto off = with(base_config(), "spark.shuffle.compress", 0);
  EXPECT_LT(run_s(on), run_s(off));
  EXPECT_LT(run_metrics(on).disk_seconds, run_metrics(off).disk_seconds);
}

TEST(EffectsTest, LargerShuffleFileBufferReducesFlushOverhead) {
  const auto small = with(base_config(), "spark.shuffle.file.buffer.kb", 16);
  const auto big = with(base_config(), "spark.shuffle.file.buffer.kb", 256);
  EXPECT_LT(run_s(big), run_s(small));
}

TEST(EffectsTest, TinyReducerInFlightStallsFetches) {
  const auto small =
      with(base_config(), "spark.reducer.maxSizeInFlight.mb", 16);
  const auto normal =
      with(base_config(), "spark.reducer.maxSizeInFlight.mb", 64);
  EXPECT_LT(run_metrics(normal).network_seconds,
            run_metrics(small).network_seconds);
}

TEST(EffectsTest, MoreConnectionsPerPeerHelpNetworkSlightly) {
  const auto one =
      with(base_config(), "spark.shuffle.io.numConnectionsPerPeer", 1);
  const auto eight =
      with(base_config(), "spark.shuffle.io.numConnectionsPerPeer", 8);
  EXPECT_LE(run_metrics(eight).network_seconds,
            run_metrics(one).network_seconds);
}

// ---------------------------------------------- serialization mechanisms ----

TEST(EffectsTest, KryoReferenceTrackingAddsCpu) {
  auto kryo = with(base_config(), "spark.serializer", 1);
  const auto tracking = with(kryo, "spark.kryo.referenceTracking", 1);
  const auto no_tracking = with(kryo, "spark.kryo.referenceTracking", 0);
  EXPECT_LT(run_metrics(no_tracking).cpu_seconds,
            run_metrics(tracking).cpu_seconds);
}

TEST(EffectsTest, ZstdTradesCpuForDiskBytes) {
  const auto lz4 = with(base_config(), "spark.io.compression.codec", 0);
  const auto zstd = with(base_config(), "spark.io.compression.codec", 3);
  const auto m_lz4 = run_metrics(lz4);
  const auto m_zstd = run_metrics(zstd);
  EXPECT_LT(m_zstd.disk_seconds, m_lz4.disk_seconds);   // better ratio
  EXPECT_GT(m_zstd.cpu_seconds, m_lz4.cpu_seconds);     // dearer codec
}

TEST(EffectsTest, RddCompressionShrinksCacheFootprint) {
  // KMeans caches everything; compressing the cache cuts eviction on a
  // memory-squeezed configuration.
  auto squeezed = base_config();
  squeezed[*space().index_of("spark.executor.memory.mb")] = 8192;
  squeezed[*space().index_of("spark.memory.storageFraction")] = 0.3;
  const auto plain = with(squeezed, "spark.rdd.compress", 0);
  const auto compressed = with(squeezed, "spark.rdd.compress", 1);
  EXPECT_LE(run_metrics(compressed, WorkloadKind::kKMeans)
                .cache_evicted_fraction,
            run_metrics(plain, WorkloadKind::kKMeans)
                .cache_evicted_fraction);
}

// ------------------------------------------------------ memory / GC ----

TEST(EffectsTest, G1BeatsParallelGcOnLargeHeaps) {
  auto big_heap = with(base_config(), "spark.executor.memory.mb", 131072);
  big_heap[*space().index_of("spark.executor.cores")] = 16;
  const auto parallel = with(big_heap, "spark.executor.gc", 0);
  const auto g1 = with(big_heap, "spark.executor.gc", 1);
  EXPECT_LT(run_metrics(g1).gc_fraction, run_metrics(parallel).gc_fraction);
}

TEST(EffectsTest, OffheapMemoryRelievesGcPressure) {
  auto tight = with(base_config(), "spark.executor.memory.mb", 12288);
  const auto onheap = tight;
  auto offheap = with(tight, "spark.memory.offHeap.enabled", 1);
  offheap[*space().index_of("spark.memory.offHeap.size.mb")] = 8192;
  EXPECT_LE(run_metrics(offheap, WorkloadKind::kKMeans).gc_fraction,
            run_metrics(onheap, WorkloadKind::kKMeans).gc_fraction);
}

TEST(EffectsTest, HigherMemoryFractionCutsSpillUnderPressure) {
  auto pressured = base_config();
  pressured[*space().index_of("spark.executor.memory.mb")] = 8192;
  pressured[*space().index_of("spark.executor.cores")] = 8;
  pressured[*space().index_of("spark.default.parallelism")] = 200;
  const auto low = with(pressured, "spark.memory.fraction", 0.3);
  const auto high = with(pressured, "spark.memory.fraction", 0.9);
  EXPECT_LE(run_metrics(high, WorkloadKind::kTeraSort).spill_gb,
            run_metrics(low, WorkloadKind::kTeraSort).spill_gb);
}

TEST(EffectsTest, MemoryOverheadTradesAwayExecutors) {
  auto dense = with(base_config(), "spark.executor.memory.mb", 40960);
  const auto small =
      SparkConfig::from_decoded(space(),
                                with(dense, "spark.executor.memoryOverhead.mb",
                                     384));
  const auto large =
      SparkConfig::from_decoded(space(),
                                with(dense, "spark.executor.memoryOverhead.mb",
                                     8192));
  EXPECT_GE(place_executors(ClusterSpec{}, small).executors_per_node,
            place_executors(ClusterSpec{}, large).executors_per_node);
}

// -------------------------------------------------------- scheduling ----

TEST(EffectsTest, ZeroLocalityWaitLosesLocality) {
  const auto eager = with(base_config(), "spark.locality.wait.s", 0.0);
  const auto patient = with(base_config(), "spark.locality.wait.s", 2.0);
  EXPECT_GT(run_metrics(eager).disk_seconds,
            run_metrics(patient).disk_seconds);
}

TEST(EffectsTest, ExcessiveLocalityWaitIdlesSlots) {
  const auto patient = with(base_config(), "spark.locality.wait.s", 2.0);
  const auto stubborn = with(base_config(), "spark.locality.wait.s", 10.0);
  EXPECT_LT(run_s(patient), run_s(stubborn));
}

TEST(EffectsTest, SpeculationHasCostWhenTasksAreUniform) {
  // On a low-skew workload (KMeans) speculation's relaunch overhead is not
  // recovered.
  const auto off = base_config();
  auto on = with(base_config(), "spark.speculation", 1);
  EXPECT_LE(run_s(off, WorkloadKind::kKMeans),
            run_s(on, WorkloadKind::kKMeans) * 1.001);
}

TEST(EffectsTest, SpeculationMultiplierControlsTheCut) {
  auto on = with(base_config(), "spark.speculation", 1);
  const auto eager = with(on, "spark.speculation.multiplier", 1.1);
  const auto lax = with(on, "spark.speculation.multiplier", 3.0);
  EXPECT_LE(run_metrics(eager).straggler_factor,
            run_metrics(lax).straggler_factor);
}

TEST(EffectsTest, CoresMaxScalesCpuBoundWorkNearLinearly) {
  const auto quarter = with(base_config(), "spark.cores.max", 40);
  const auto full = with(base_config(), "spark.cores.max", 160);
  const double t_quarter = run_s(quarter, WorkloadKind::kKMeans);
  const double t_full = run_s(full, WorkloadKind::kKMeans);
  // CPU-bound: 4x the cores should buy at least 2x the speed.
  EXPECT_GT(t_quarter, 2.0 * t_full);
}

TEST(EffectsTest, MaxPartitionBytesControlsInputParallelism) {
  // Larger splits -> fewer, bigger input tasks -> worse utilization on a
  // wide cluster for the scan-bound stages.
  const auto fine = with(base_config(), "spark.files.maxPartitionBytes.mb", 64);
  const auto coarse =
      with(base_config(), "spark.files.maxPartitionBytes.mb", 512);
  const auto m_fine = run_metrics(fine);
  const auto m_coarse = run_metrics(coarse);
  EXPECT_GT(m_fine.total_tasks, m_coarse.total_tasks);
}

// ------------------------------------------------------ no-op parameters ----

TEST(EffectsTest, DocumentedNoopsDoNotMoveTheClock) {
  // Parameters the engine deliberately ignores (they exist so the
  // high-dimensional space contains realistic dead weight, §2.2) must not
  // change a noiseless run at all.
  const double baseline = run_s(base_config());
  for (const auto& [name, value] :
       std::vector<std::pair<const char*, double>>{
           {"spark.shuffle.io.maxRetries", 10},
           {"spark.shuffle.io.retryWait.s", 30},
           {"spark.network.timeout.s", 600},
           {"spark.executor.heartbeatInterval.s", 60},
           {"spark.broadcast.checksum", 0},
           {"spark.storage.memoryMapThreshold.mb", 16},
           {"spark.cleaner.periodicGC.interval.min", 10},
           {"spark.task.maxFailures", 8},
           {"spark.shuffle.service.enabled", 1},
           {"spark.shuffle.io.preferDirectBufs", 0},
       }) {
    EXPECT_DOUBLE_EQ(run_s(with(base_config(), name, value)), baseline)
        << name;
  }
}

// ---------------------------------------------------- dataset scaling ----

class DatasetScalingTest : public ::testing::TestWithParam<WorkloadKind> {};

TEST_P(DatasetScalingTest, LargerDatasetsTakeLonger) {
  const auto kind = GetParam();
  const double d1 = run_s(base_config(), kind, 1);
  const double d2 = run_s(base_config(), kind, 2);
  const double d3 = run_s(base_config(), kind, 3);
  EXPECT_LT(d1, d2);
  EXPECT_LT(d2, d3);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, DatasetScalingTest,
                         ::testing::Values(WorkloadKind::kPageRank,
                                           WorkloadKind::kKMeans,
                                           WorkloadKind::kConnectedComponents,
                                           WorkloadKind::kLogisticRegression,
                                           WorkloadKind::kTeraSort));

// --------------------------------------------------------- objective metric ----

TEST(MetricTest, CoreSecondsFavorsSmallFootprints) {
  // A config using a quarter of the cluster scores better on core-seconds
  // than on wall clock relative to a full-cluster config.
  const auto full = base_config();
  const auto quarter = with(base_config(), "spark.cores.max", 40);
  auto make = [&](ObjectiveMetric metric) {
    return SparkObjective(ClusterSpec{},
                          make_workload(WorkloadKind::kKMeans, 1), space(),
                          42, 0.0, 0.0, metric);
  };
  auto time_obj = make(ObjectiveMetric::kExecutionTime);
  auto cost_obj = make(ObjectiveMetric::kCoreSeconds);
  const double t_full = time_obj.evaluate_decoded(full).value_s;
  const double t_quarter = time_obj.evaluate_decoded(quarter).value_s;
  const double c_full = cost_obj.evaluate_decoded(full).value_s;
  const double c_quarter = cost_obj.evaluate_decoded(quarter).value_s;
  EXPECT_GT(t_quarter, t_full);            // slower in wall clock
  EXPECT_LT(c_quarter / c_full, t_quarter / t_full);  // cheaper per core
}

TEST(MetricTest, ExecutionTimeMetricIsUnscaled) {
  SparkObjective obj(ClusterSpec{}, make_workload(WorkloadKind::kTeraSort, 1),
                     space(), 42, 0.0, 0.0, ObjectiveMetric::kExecutionTime);
  const auto out = obj.evaluate_decoded(base_config());
  EXPECT_DOUBLE_EQ(out.value_s, out.raw.seconds);
}

}  // namespace
}  // namespace robotune::sparksim
