// Tests for src/gp: kernels, Gaussian-process regression, acquisition
// functions, GP-Hedge portfolio.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/statistics.h"
#include "common/thread_pool.h"
#include "gp/acquisition.h"
#include "gp/gaussian_process.h"
#include "gp/kernel.h"
#include "opt/lbfgsb.h"

namespace robotune::gp {
namespace {

// Central-difference gradient of f at x (reference for the analytic paths).
std::vector<double> numeric_grad(
    const std::function<double(std::span<const double>)>& f,
    std::span<const double> x, double step = 1e-6) {
  std::vector<double> grad(x.size());
  const auto obj = opt::numeric_gradient(f, step);
  obj(x, grad);
  return grad;
}

// A small 2-D training set with mild noise, shared by the gradient tests.
GaussianProcess fitted_gp_2d() {
  Rng rng(17);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 12; ++i) {
    const double a = rng.uniform();
    const double b = rng.uniform();
    x.push_back({a, b});
    y.push_back(std::sin(5.0 * a) + (b - 0.4) * (b - 0.4) * 3.0 +
                rng.normal(0, 0.01));
  }
  GaussianProcess gp(default_kernel(0.3, 1.0, 1e-4), GpOptions{false});
  gp.fit(x, y);
  return gp;
}

// ------------------------------------------------------------- kernels ----

TEST(Matern52Test, SelfCovarianceIsSignalVariance) {
  Matern52 k(0.5, 2.0);
  const std::vector<double> x = {0.1, 0.9};
  EXPECT_NEAR(k(x, x), 2.0, 1e-12);
}

TEST(Matern52Test, DecaysWithDistanceAndIsSymmetric) {
  Matern52 k(0.5, 1.0);
  const std::vector<double> a = {0.0};
  const std::vector<double> b = {0.3};
  const std::vector<double> c = {0.9};
  EXPECT_GT(k(a, b), k(a, c));
  EXPECT_DOUBLE_EQ(k(a, b), k(b, a));
  EXPECT_GT(k(a, c), 0.0);
}

TEST(Matern52Test, LongerLengthScaleDecaysSlower) {
  Matern52 narrow(0.1, 1.0);
  Matern52 wide(2.0, 1.0);
  const std::vector<double> a = {0.0};
  const std::vector<double> b = {0.5};
  EXPECT_LT(narrow(a, b), wide(a, b));
}

TEST(Matern52Test, LogParamsRoundTrip) {
  Matern52 k(0.7, 3.0);
  const auto p = k.log_params();
  Matern52 k2(1.0, 1.0);
  k2.set_log_params(p);
  EXPECT_NEAR(k2.length_scale(), 0.7, 1e-12);
  EXPECT_NEAR(k2.signal_variance(), 3.0, 1e-12);
}

TEST(Matern52Test, InvalidParametersThrow) {
  EXPECT_THROW(Matern52(-1.0, 1.0), InvalidArgument);
  EXPECT_THROW(Matern52(1.0, 0.0), InvalidArgument);
}

TEST(Matern52ArdTest, IrrelevantDimensionDropsOut) {
  Matern52Ard k(2, 0.5, 1.0);
  // Make dimension 1 irrelevant via a huge length scale.
  k.set_log_params(std::vector<double>{std::log(0.5), std::log(1e6), 0.0});
  const std::vector<double> a = {0.2, 0.1};
  const std::vector<double> b = {0.2, 0.9};  // differs only in dim 1
  EXPECT_NEAR(k(a, b), k(a, a), 1e-6);
}

TEST(Matern52ArdTest, MatchesIsotropicWhenScalesEqual) {
  Matern52 iso(0.4, 1.5);
  Matern52Ard ard(3, 0.4, 1.5);
  const std::vector<double> a = {0.1, 0.2, 0.3};
  const std::vector<double> b = {0.9, 0.5, 0.4};
  EXPECT_NEAR(iso(a, b), ard(a, b), 1e-12);
}

TEST(Matern52ArdTest, ParamsRoundTrip) {
  Matern52Ard k(2, 0.3, 2.0);
  auto p = k.log_params();
  ASSERT_EQ(p.size(), 3u);
  p[0] = std::log(0.9);
  k.set_log_params(p);
  EXPECT_NEAR(k.length_scales()[0], 0.9, 1e-12);
  EXPECT_NEAR(k.length_scales()[1], 0.3, 1e-12);
}

TEST(WhiteNoiseTest, OnlyContributesToObservedDiagonal) {
  WhiteNoise k(0.25);
  const std::vector<double> x = {0.5};
  EXPECT_DOUBLE_EQ(k(x, x), 0.0);  // cross-covariances are zero
  EXPECT_DOUBLE_EQ(k.diagonal_noise(), 0.25);
}

TEST(SumKernelTest, AddsComponentsAndConcatenatesParams) {
  SumKernel k(std::make_unique<Matern52>(0.5, 1.0),
              std::make_unique<WhiteNoise>(0.1));
  const std::vector<double> a = {0.0};
  const std::vector<double> b = {0.2};
  Matern52 m(0.5, 1.0);
  EXPECT_DOUBLE_EQ(k(a, b), m(a, b));
  EXPECT_DOUBLE_EQ(k.diagonal_noise(), 0.1);
  EXPECT_EQ(k.num_params(), 3u);
  const auto clone = k.clone();
  EXPECT_DOUBLE_EQ((*clone)(a, b), k(a, b));
}

// ------------------------------------------------------ Gaussian process ----

TEST(GpTest, InterpolatesNoiselessTrainingData) {
  std::vector<std::vector<double>> x = {{0.1}, {0.4}, {0.8}};
  std::vector<double> y = {1.0, 3.0, -2.0};
  GaussianProcess gp(default_kernel(0.3, 1.0, 1e-8), GpOptions{false});
  gp.fit(x, y);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const auto p = gp.predict(x[i]);
    EXPECT_NEAR(p.mean, y[i], 1e-3);
    EXPECT_LT(p.stddev(), 0.1);
  }
}

TEST(GpTest, UncertaintyGrowsAwayFromData) {
  std::vector<std::vector<double>> x = {{0.2}, {0.3}};
  std::vector<double> y = {1.0, 1.5};
  GaussianProcess gp(default_kernel(0.1, 1.0, 1e-6), GpOptions{false});
  gp.fit(x, y);
  const auto near = gp.predict(std::vector<double>{0.25});
  const auto far = gp.predict(std::vector<double>{0.95});
  EXPECT_LT(near.variance, far.variance);
}

TEST(GpTest, PredictionRevertsToMeanFarAway) {
  std::vector<std::vector<double>> x = {{0.5}};
  std::vector<double> y = {10.0};
  GaussianProcess gp(default_kernel(0.05, 1.0, 1e-6), GpOptions{false});
  gp.fit(x, y);
  // Standardization is degenerate with one point (scale=1), so the prior
  // mean equals the observed value; with more points it is their mean.
  std::vector<std::vector<double>> x2 = {{0.1}, {0.2}};
  std::vector<double> y2 = {4.0, 8.0};
  gp.fit(x2, y2);
  const auto far = gp.predict(std::vector<double>{0.99});
  EXPECT_NEAR(far.mean, 6.0, 0.5);
}

TEST(GpTest, HyperparameterFitImprovesMarginalLikelihood) {
  Rng rng(3);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 30; ++i) {
    const double xi = rng.uniform();
    x.push_back({xi});
    y.push_back(std::sin(7.0 * xi) + rng.normal(0, 0.05));
  }
  GaussianProcess fixed(default_kernel(1.5, 1.0, 1e-2), GpOptions{false});
  fixed.fit(x, y);
  GpOptions opt;
  opt.optimize_hyperparameters = true;
  GaussianProcess fitted(default_kernel(1.5, 1.0, 1e-2), opt);
  fitted.fit(x, y);
  EXPECT_GE(fitted.log_marginal_likelihood(),
            fixed.log_marginal_likelihood() - 1e-6);
}

TEST(GpTest, ScaleInvariantThroughStandardization) {
  std::vector<std::vector<double>> x = {{0.1}, {0.5}, {0.9}};
  std::vector<double> y = {100.0, 300.0, 200.0};
  std::vector<double> y_scaled = {1000.0, 3000.0, 2000.0};
  GaussianProcess a(default_kernel(0.3, 1.0, 1e-6), GpOptions{false});
  GaussianProcess b(default_kernel(0.3, 1.0, 1e-6), GpOptions{false});
  a.fit(x, y);
  b.fit(x, y_scaled);
  const auto pa = a.predict(std::vector<double>{0.3});
  const auto pb = b.predict(std::vector<double>{0.3});
  EXPECT_NEAR(pb.mean, 10.0 * pa.mean, 1e-6);
  EXPECT_NEAR(pb.stddev(), 10.0 * pa.stddev(), 1e-6);
}

TEST(GpTest, BestObservedIsMinimum) {
  std::vector<std::vector<double>> x = {{0.1}, {0.5}, {0.9}};
  std::vector<double> y = {5.0, 2.0, 7.0};
  GaussianProcess gp(default_kernel(), GpOptions{false});
  gp.fit(x, y);
  EXPECT_DOUBLE_EQ(gp.best_observed(), 2.0);
}

TEST(GpTest, CopySemanticsPreserveFit) {
  std::vector<std::vector<double>> x = {{0.2}, {0.7}};
  std::vector<double> y = {1.0, -1.0};
  GaussianProcess gp(default_kernel(0.3, 1.0, 1e-6), GpOptions{false});
  gp.fit(x, y);
  GaussianProcess copy(gp);
  const auto p1 = gp.predict(std::vector<double>{0.4});
  const auto p2 = copy.predict(std::vector<double>{0.4});
  EXPECT_DOUBLE_EQ(p1.mean, p2.mean);
  EXPECT_DOUBLE_EQ(p1.variance, p2.variance);
}

TEST(GpTest, PredictBeforeFitThrows) {
  GaussianProcess gp;
  EXPECT_THROW(gp.predict(std::vector<double>{0.5}), InvalidArgument);
}

TEST(GpTest, MismatchedXYThrows) {
  GaussianProcess gp;
  std::vector<std::vector<double>> x = {{0.1}};
  std::vector<double> y = {1.0, 2.0};
  EXPECT_THROW(gp.fit(x, y), InvalidArgument);
}

TEST(GpTest, PredictMeanMatchesPredict) {
  std::vector<std::vector<double>> x = {{0.1}, {0.6}};
  std::vector<double> y = {2.0, 4.0};
  GaussianProcess gp(default_kernel(), GpOptions{false});
  gp.fit(x, y);
  const std::vector<std::vector<double>> grid = {{0.2}, {0.5}};
  const auto means = gp.predict_mean(grid);
  EXPECT_DOUBLE_EQ(means[0], gp.predict(grid[0]).mean);
  EXPECT_DOUBLE_EQ(means[1], gp.predict(grid[1]).mean);
}

// -------------------------------------------------------- acquisitions ----

TEST(AcquisitionTest, EiIsNonNegativeAndZeroAtZeroSigma) {
  EXPECT_GE(acquisition_value(AcquisitionKind::kEI, 5.0, 1.0, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(acquisition_value(AcquisitionKind::kEI, 5.0, 0.0, 4.0),
                   0.0);
}

TEST(AcquisitionTest, EiGrowsWithImprovementPotential) {
  const double worse = acquisition_value(AcquisitionKind::kEI, 5.0, 1.0, 4.0);
  const double better = acquisition_value(AcquisitionKind::kEI, 2.0, 1.0, 4.0);
  EXPECT_GT(better, worse);
}

TEST(AcquisitionTest, PiIsAProbability) {
  for (double mu : {1.0, 3.0, 6.0}) {
    const double v = acquisition_value(AcquisitionKind::kPI, mu, 0.7, 4.0);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  // Far below the incumbent: nearly certain improvement.
  EXPECT_GT(acquisition_value(AcquisitionKind::kPI, 0.0, 0.5, 4.0), 0.99);
}

TEST(AcquisitionTest, LcbPrefersLowMeanAndHighSigma) {
  const AcquisitionParams params;
  const double base = acquisition_value(AcquisitionKind::kLCB, 3.0, 1.0, 0.0);
  EXPECT_GT(acquisition_value(AcquisitionKind::kLCB, 2.0, 1.0, 0.0), base);
  EXPECT_GT(acquisition_value(AcquisitionKind::kLCB, 3.0, 2.0, 0.0), base);
  // Matches the formula −(μ − κσ).
  EXPECT_NEAR(base, -(3.0 - params.kappa * 1.0), 1e-12);
}

TEST(AcquisitionTest, XiShiftsEiDown) {
  AcquisitionParams eager;
  eager.xi = 0.0;
  AcquisitionParams cautious;
  cautious.xi = 0.5;
  EXPECT_GT(acquisition_value(AcquisitionKind::kEI, 3.5, 1.0, 4.0, eager),
            acquisition_value(AcquisitionKind::kEI, 3.5, 1.0, 4.0, cautious));
}

TEST(OptimizeAcquisitionTest, FindsPromisingRegion) {
  // Observations form a V shape with minimum near x=0.5; EI should propose
  // a point near the bottom region rather than the edges.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (double xi : {0.0, 0.15, 0.35, 0.65, 0.85, 1.0 - 1e-9}) {
    x.push_back({xi});
    y.push_back(std::abs(xi - 0.5) * 10.0);
  }
  GaussianProcess gp(default_kernel(0.2, 1.0, 1e-4), GpOptions{false});
  gp.fit(x, y);
  Rng rng(4);
  const auto best =
      optimize_acquisition(gp, AcquisitionKind::kEI, 1, rng);
  EXPECT_GT(best[0], 0.3);
  EXPECT_LT(best[0], 0.7);
}

// ------------------------------------------- analytic gradients (DESIGN §8) ----

TEST(KernelGradientTest, Matern52MatchesNumericGradient) {
  const Matern52 k(0.35, 1.7);
  const std::vector<double> a = {0.2, 0.8, 0.5};
  const std::vector<double> b = {0.6, 0.3, 0.45};
  std::vector<double> grad(3, 0.0);
  k.accumulate_gradient(a, b, grad);
  const auto reference = numeric_grad(
      [&](std::span<const double> p) { return k(p, b); }, a);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(grad[i], reference[i], 1e-5);
  }
}

TEST(KernelGradientTest, Matern52VanishesAtCoincidentPoints) {
  const Matern52 k(0.5, 1.0);
  const std::vector<double> a = {0.4, 0.4};
  std::vector<double> grad(2, 0.0);
  k.accumulate_gradient(a, a, grad);
  EXPECT_DOUBLE_EQ(grad[0], 0.0);
  EXPECT_DOUBLE_EQ(grad[1], 0.0);
}

TEST(KernelGradientTest, Matern52ArdMatchesNumericGradient) {
  Matern52Ard k(3, 0.4, 2.0);
  k.set_log_params(std::vector<double>{std::log(0.2), std::log(0.9),
                                       std::log(3.0), std::log(2.0)});
  const std::vector<double> a = {0.1, 0.7, 0.4};
  const std::vector<double> b = {0.5, 0.2, 0.9};
  std::vector<double> grad(3, 0.0);
  k.accumulate_gradient(a, b, grad);
  const auto reference = numeric_grad(
      [&](std::span<const double> p) { return k(p, b); }, a);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(grad[i], reference[i], 1e-5);
  }
}

TEST(KernelGradientTest, SumKernelForwardsToComponents) {
  // default_kernel = Matern52 + WhiteNoise; the white-noise part must add
  // nothing (its cross-covariance is identically zero off the diagonal).
  const auto sum = default_kernel(0.3, 1.5, 1e-2);
  const Matern52 matern(0.3, 1.5);
  const std::vector<double> a = {0.3, 0.6};
  const std::vector<double> b = {0.8, 0.1};
  std::vector<double> sum_grad(2, 0.0), matern_grad(2, 0.0);
  sum->accumulate_gradient(a, b, sum_grad);
  matern.accumulate_gradient(a, b, matern_grad);
  EXPECT_DOUBLE_EQ(sum_grad[0], matern_grad[0]);
  EXPECT_DOUBLE_EQ(sum_grad[1], matern_grad[1]);
}

TEST(PredictGradientTest, MeanAndVarianceGradientsMatchNumeric) {
  const GaussianProcess gp = fitted_gp_2d();
  GpWorkspace ws;
  PredictGradient pg;
  for (const std::vector<double>& x :
       {std::vector<double>{0.3, 0.6}, std::vector<double>{0.85, 0.15},
        std::vector<double>{0.5, 0.5}}) {
    gp.predict_with_gradient(x, ws, pg);
    // Values agree exactly with the plain prediction path.
    const Prediction p = gp.predict(x, ws);
    EXPECT_EQ(pg.mean, p.mean);
    EXPECT_EQ(pg.variance, p.variance);
    const auto dmean_ref = numeric_grad(
        [&](std::span<const double> q) {
          GpWorkspace local;
          return gp.predict(q, local).mean;
        },
        x);
    const auto dvar_ref = numeric_grad(
        [&](std::span<const double> q) {
          GpWorkspace local;
          return gp.predict(q, local).variance;
        },
        x);
    for (std::size_t i = 0; i < 2; ++i) {
      EXPECT_NEAR(pg.dmean[i], dmean_ref[i], 1e-5);
      EXPECT_NEAR(pg.dvariance[i], dvar_ref[i], 1e-5);
    }
  }
}

class AcquisitionGradientTest
    : public ::testing::TestWithParam<AcquisitionKind> {};

TEST_P(AcquisitionGradientTest, MatchesNumericGradient) {
  const AcquisitionKind kind = GetParam();
  const GaussianProcess gp = fitted_gp_2d();
  const double best = gp.best_observed();
  const AcquisitionParams params;
  GpWorkspace ws;
  PredictGradient pg;
  std::vector<double> grad(2);
  for (const std::vector<double>& x :
       {std::vector<double>{0.25, 0.7}, std::vector<double>{0.6, 0.35},
        std::vector<double>{0.9, 0.9}}) {
    gp.predict_with_gradient(x, ws, pg);
    const double value =
        acquisition_value_gradient(kind, pg, best, params, grad);
    // Value agrees with the scalar acquisition on the same posterior.
    EXPECT_DOUBLE_EQ(
        value, acquisition_value(kind, pg.mean, pg.stddev(), best, params));
    const auto reference = numeric_grad(
        [&](std::span<const double> q) {
          GpWorkspace local;
          const Prediction p = gp.predict(q, local);
          return acquisition_value(kind, p.mean, p.stddev(), best, params);
        },
        x);
    for (std::size_t i = 0; i < 2; ++i) {
      EXPECT_NEAR(grad[i], reference[i], 1e-5);
    }
  }
}

TEST_P(AcquisitionGradientTest, ZeroSigmaIsHandled) {
  const AcquisitionKind kind = GetParam();
  PredictGradient pg;
  pg.mean = 2.0;
  pg.variance = 0.0;
  pg.dmean = {1.5, -0.5};
  pg.dvariance = {0.0, 0.0};
  std::vector<double> grad(2, 99.0);
  const double value =
      acquisition_value_gradient(kind, pg, 1.0, AcquisitionParams{}, grad);
  if (kind == AcquisitionKind::kLCB) {
    EXPECT_DOUBLE_EQ(value, -2.0);
    EXPECT_DOUBLE_EQ(grad[0], -1.5);
    EXPECT_DOUBLE_EQ(grad[1], 0.5);
  } else {
    EXPECT_DOUBLE_EQ(value, 0.0);
    EXPECT_DOUBLE_EQ(grad[0], 0.0);
    EXPECT_DOUBLE_EQ(grad[1], 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, AcquisitionGradientTest,
                         ::testing::Values(AcquisitionKind::kPI,
                                           AcquisitionKind::kEI,
                                           AcquisitionKind::kLCB));

// ------------------------------------------------- batched prediction ----

TEST(PredictBatchTest, BitIdenticalToPerPointPredict) {
  const GaussianProcess gp = fitted_gp_2d();
  Rng rng(23);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 40; ++i) {
    points.push_back({rng.uniform(), rng.uniform()});
  }
  const auto batch = gp.predict_batch(points);
  ASSERT_EQ(batch.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Prediction single = gp.predict(points[i]);
    EXPECT_EQ(batch[i].mean, single.mean);  // exact, not approximate
    EXPECT_EQ(batch[i].variance, single.variance);
  }
}

TEST(PredictBatchTest, WorkspaceOverloadMatchesConveniencePredict) {
  const GaussianProcess gp = fitted_gp_2d();
  GpWorkspace ws;
  const std::vector<double> x = {0.42, 0.58};
  const Prediction with_ws = gp.predict(x, ws);
  const Prediction plain = gp.predict(x);
  EXPECT_EQ(with_ws.mean, plain.mean);
  EXPECT_EQ(with_ws.variance, plain.variance);
  // Reuse after add_point stays consistent (scratch is invalidated).
  GaussianProcess grown = gp;
  grown.add_point({0.77, 0.33}, 1.25);
  const Prediction after = grown.predict(x);
  GpWorkspace ws2;
  EXPECT_EQ(grown.predict(x, ws2).mean, after.mean);
}

TEST(PredictBatchTest, DimensionMismatchThrows) {
  const GaussianProcess gp = fitted_gp_2d();
  const std::vector<std::vector<double>> bad = {{0.5}};
  EXPECT_THROW(gp.predict_batch(bad), InvalidArgument);
}

// ------------------------------------- acquisition optimizer determinism ----

TEST(OptimizeAcquisitionTest, ByteIdenticalAcrossWorkerCounts) {
  const GaussianProcess gp = fitted_gp_2d();
  AcquisitionOptimizerOptions options;
  options.probe_candidates = 64;
  options.starts = 4;

  auto run = [&](int workers, ThreadPool* pool) {
    Rng rng(42);  // fresh identically-seeded generator per run
    AcquisitionOptimizerOptions o = options;
    o.workers = workers;
    o.pool = pool;
    return optimize_acquisition(gp, AcquisitionKind::kEI, 2, rng, {}, o);
  };
  const auto inline_x = run(1, nullptr);
  ThreadPool pool2(2);
  ThreadPool pool4(4);
  for (ThreadPool* pool : {&pool2, &pool4}) {
    const auto x = run(0, pool);
    ASSERT_EQ(x.size(), inline_x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_EQ(x[i], inline_x[i]);  // exact, not approximate
    }
  }
}

TEST(OptimizeAcquisitionTest, AnalyticAndNumericLandInSameRegion) {
  const GaussianProcess gp = fitted_gp_2d();
  AcquisitionOptimizerOptions analytic;
  analytic.workers = 1;
  AcquisitionOptimizerOptions numeric = analytic;
  numeric.analytic_gradients = false;
  Rng rng_a(7), rng_n(7);
  const auto xa =
      optimize_acquisition(gp, AcquisitionKind::kEI, 2, rng_a, {}, analytic);
  const auto xn =
      optimize_acquisition(gp, AcquisitionKind::kEI, 2, rng_n, {}, numeric);
  // Same probes, same starts; the two gradient paths may stop at slightly
  // different points of the same basin.
  const double best = gp.best_observed();
  GpWorkspace ws;
  const Prediction pa = gp.predict(xa, ws);
  const Prediction pn = gp.predict(xn, ws);
  const double ua =
      acquisition_value(AcquisitionKind::kEI, pa.mean, pa.stddev(), best);
  const double un =
      acquisition_value(AcquisitionKind::kEI, pn.mean, pn.stddev(), best);
  EXPECT_NEAR(ua, un, 1e-4);
}

TEST(OptimizeAcquisitionTest, ConsumesExactlyOneRngDraw) {
  const GaussianProcess gp = fitted_gp_2d();
  Rng a(31), b(31);
  AcquisitionOptimizerOptions small, big;
  small.probe_candidates = 8;
  small.starts = 2;
  small.workers = 1;
  big.probe_candidates = 128;
  big.starts = 6;
  big.workers = 1;
  optimize_acquisition(gp, AcquisitionKind::kLCB, 2, a, {}, small);
  optimize_acquisition(gp, AcquisitionKind::kLCB, 2, b, {}, big);
  // Both generators advanced by exactly one draw: their next outputs match.
  EXPECT_EQ(a(), b());
}

// ------------------------------------------------------------- GP-Hedge ----

TEST(GpHedgeTest, InitialProbabilitiesUniform) {
  GpHedge hedge(2, 1);
  const auto p = hedge.probabilities();
  ASSERT_EQ(p.size(), 3u);
  for (double v : p) EXPECT_NEAR(v, 1.0 / 3.0, 1e-12);
}

TEST(GpHedgeTest, ProbabilitiesSumToOneAfterUpdates) {
  GpHedge hedge(1, 2);
  std::vector<std::vector<double>> x = {{0.2}, {0.8}};
  std::vector<double> y = {1.0, 3.0};
  GaussianProcess gp(default_kernel(0.3, 1.0, 1e-4), GpOptions{false});
  gp.fit(x, y);
  const auto choice = hedge.propose(gp);
  hedge.update_gains(gp, choice);
  const auto p = hedge.probabilities();
  double sum = 0.0;
  for (double v : p) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(GpHedgeTest, ProposesThreeNominees) {
  GpHedge hedge(2, 3);
  std::vector<std::vector<double>> x = {{0.2, 0.2}, {0.8, 0.8}, {0.5, 0.1}};
  std::vector<double> y = {1.0, 3.0, 2.0};
  GaussianProcess gp(default_kernel(0.4, 1.0, 1e-4), GpOptions{false});
  gp.fit(x, y);
  const auto choice = hedge.propose(gp);
  EXPECT_EQ(choice.nominees.size(), 3u);
  EXPECT_EQ(choice.point.size(), 2u);
  for (double v : choice.point) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(GpHedgeTest, GainsFavorFunctionsNominatingGoodPoints) {
  // Give PI/EI/LCB gains manually through updates and check the softmax
  // shifts: simulate by fitting a GP where the region one nominee sits in
  // is clearly better.
  GpHedge hedge(1, 7);
  std::vector<std::vector<double>> x = {{0.1}, {0.5}, {0.9}};
  std::vector<double> y = {5.0, 1.0, 5.0};
  GaussianProcess gp(default_kernel(0.2, 1.0, 1e-4), GpOptions{false});
  gp.fit(x, y);
  for (int i = 0; i < 5; ++i) {
    const auto choice = hedge.propose(gp);
    hedge.update_gains(gp, choice);
  }
  // All gains move; none is NaN; probabilities remain a distribution.
  for (double g : hedge.gains()) EXPECT_TRUE(std::isfinite(g));
  const auto p = hedge.probabilities();
  for (double v : p) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

}  // namespace
}  // namespace robotune::gp
