// Tier-1 ask/tell (external-mode) session suite (DESIGN.md §16): lease
// ledger, idempotent observe, the deterministic lease reaper, and the
// crash-restart contract.
//
// The robustness contract under test: an external executor that
// crashes, retries, duplicates, or abandons deliveries can never
// corrupt a session — a re-sent observe returns the recorded ack, a
// conflicting one is rejected, an abandoned lease returns to the
// pending pool on a journaled reaper sweep, and a kill -9 of the
// daemon restarts into exactly the same pending set (nothing lost,
// nothing double-issued).  A completed external session replays
// standalone to byte-identical journal bytes.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/chaos.h"
#include "core/external.h"
#include "core/persistence.h"
#include "core/session.h"
#include "service/client.h"
#include "service/session_manager.h"

namespace robotune {
namespace {

namespace fs = std::filesystem;

// Small-but-real external session: full selection + BO stack with the
// evaluations outsourced, dialed down so a fleet fits tier-1 time.
// Suggestions are published `batch` at a time (the init design is
// chunked by batch_size too), so batch=2 → exchanges of 2, and tests
// that need a whole round of 4 pending at once pass batch=4.
core::SessionSpec external_spec(std::uint64_t seed, int budget = 6,
                                int batch = 2) {
  core::SessionSpec spec;
  spec.workload = "PR";
  spec.dataset = 1;
  spec.tuner = "robotune";
  spec.mode = "external";
  spec.budget = budget;
  spec.seed = seed;
  spec.init = 4;
  spec.batch = batch;
  spec.selection_samples = 20;
  return spec;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    root_ = fs::temp_directory_path() /
            ("robotune-external-" + tag + "-" +
             std::to_string(::getpid()));
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }
  std::string path() const { return root_.string(); }
  std::string file(const std::string& name) const {
    return (root_ / name).string();
  }

 private:
  fs::path root_;
};

/// The reference external executor: a pure function of (unit, index),
/// so two independent drives of the same session report identical
/// tuples — the precondition for the byte-identity assertions.
core::ExternalObservation fake_measurement(const std::vector<double>& unit,
                                           std::uint64_t index) {
  core::ExternalObservation obs;
  double v = 0.0;
  for (std::size_t i = 0; i < unit.size(); ++i) {
    v += unit[i] * static_cast<double>(i + 1);
  }
  obs.value_s =
      60.0 + 10.0 * v / static_cast<double>(unit.size() ? unit.size() : 1) +
      static_cast<double>(index % 3);
  obs.cost_s = obs.value_s + 2.5;
  obs.status = sparksim::RunStatus::kOk;
  return obs;
}

bool terminal(service::SessionState state) {
  return state == service::SessionState::kDone ||
         state == service::SessionState::kCancelled ||
         state == service::SessionState::kFailed;
}

/// Drives an external session to a terminal state through the ask/tell
/// service surface, evaluating every leased suggestion with
/// fake_measurement.  Retries deliveries the chaos harness drops — the
/// ledger's idempotency is what makes the blind retry safe.
void drive_to_completion(service::SessionManager& manager,
                         std::uint64_t id) {
  for (int spin = 0; spin < 60000; ++spin) {
    const auto status = manager.status(id);
    ASSERT_TRUE(status.has_value());
    if (terminal(status->state)) return;
    auto ask = manager.ask(id, 16);
    ASSERT_TRUE(ask.ok) << ask.error;
    if (ask.grants.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    for (const auto& grant : ask.grants) {
      const auto obs = fake_measurement(grant.unit, grant.index);
      bool delivered = false;
      for (int attempt = 0; attempt < 32 && !delivered; ++attempt) {
        const auto told = manager.tell(id, grant.index, obs);
        if (told.ok) {
          delivered = true;
        } else {
          // Only the chaos drop is retryable; anything else is a bug.
          ASSERT_NE(told.error.find("chaos"), std::string::npos)
              << told.error;
        }
      }
      ASSERT_TRUE(delivered) << "delivery kept getting dropped";
    }
  }
  FAIL() << "session " << id << " never reached a terminal state";
}

/// Resolves grants a test leased by hand (leases never expire without
/// reaper ticks, so whoever leases must tell).
void tell_all(service::SessionManager& manager, std::uint64_t id,
              const std::vector<core::LeaseGrant>& grants) {
  for (const auto& grant : grants) {
    const auto told = manager.tell(
        id, grant.index, fake_measurement(grant.unit, grant.index));
    ASSERT_TRUE(told.ok) << told.error;
  }
}

void wait_for_state(service::SessionManager& manager, std::uint64_t id,
                    service::SessionState state) {
  for (int i = 0; i < 20000; ++i) {
    const auto status = manager.status(id);
    ASSERT_TRUE(status.has_value());
    if (status->state == state) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "session " << id << " never reached state "
         << service::to_string(state);
}

/// Polls ask() until it has granted `count` suggestions (selection runs
/// daemon-side before the first round is published).
std::vector<core::LeaseGrant> wait_for_grants(
    service::SessionManager& manager, std::uint64_t id, std::size_t count,
    std::size_t per_ask = 16) {
  std::vector<core::LeaseGrant> grants;
  for (int spin = 0; spin < 60000 && grants.size() < count; ++spin) {
    auto ask = manager.ask(id, per_ask);
    EXPECT_TRUE(ask.ok) << ask.error;
    for (auto& g : ask.grants) grants.push_back(std::move(g));
    if (grants.size() < count) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(grants.size(), count);
  return grants;
}

// ---- end-to-end completion + standalone replay ---------------------------

TEST(ExternalSessionTest, CompletesViaAskTellAndReplaysStandalone) {
  TempDir dir("complete");
  service::ServiceOptions options;
  options.root = dir.path();
  options.max_live = 1;
  service::SessionManager manager(options);

  const auto spec = external_spec(21);
  const auto started = manager.start(spec);
  ASSERT_TRUE(started.admitted) << started.error;
  drive_to_completion(manager, started.id);
  wait_for_state(manager, started.id, service::SessionState::kDone);

  const auto status = manager.status(started.id);
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->external);
  EXPECT_EQ(status->evaluations, 6u);
  EXPECT_EQ(status->pending, 0u);
  EXPECT_EQ(status->leased, 0u);

  // The journal is a complete external-session record: the mode flag,
  // one ack per observation (never pruned), and no unresolved suggests.
  const std::string journal = manager.journal_path(started.id);
  const std::string bytes = slurp(journal);
  core::SessionCheckpoint state;
  ASSERT_TRUE(core::load_session_file(journal, state));
  EXPECT_TRUE(state.external);
  EXPECT_EQ(state.evaluations.size(), 6u);
  EXPECT_EQ(state.observe_acks.size(), 6u);
  EXPECT_TRUE(state.suggests.empty());

  // Standalone replay (no daemon, no bridge): the CLI code path resumes
  // the copied journal, replays every funneled evaluation, and leaves
  // the bytes untouched.
  const std::string copy = dir.file("replay.journal");
  fs::copy_file(journal, copy);
  core::SessionSpec replay = spec;
  replay.checkpoint_path = copy;
  replay.resume = true;
  std::string error;
  auto session = core::SessionFactory::create(replay, &error);
  ASSERT_NE(session, nullptr) << error;
  const auto outcome = session->run();
  ASSERT_TRUE(outcome.ok()) << outcome.error;
  EXPECT_TRUE(outcome.resumed);
  EXPECT_EQ(outcome.replayed, 6u);
  EXPECT_EQ(outcome.result.history.size(), 6u);
  EXPECT_EQ(slurp(copy), bytes);
}

// ---- idempotent observe --------------------------------------------------

TEST(ExternalSessionTest, DuplicateObserveAcksIdempotentlyConflictRejects) {
  TempDir dir("idem");
  service::ServiceOptions options;
  options.root = dir.path();
  options.max_live = 1;
  service::SessionManager manager(options);

  const auto started = manager.start(external_spec(22, 6, 4));
  ASSERT_TRUE(started.admitted) << started.error;
  const auto grants = wait_for_grants(manager, started.id, 4);

  const auto obs = fake_measurement(grants[0].unit, grants[0].index);
  const auto first = manager.tell(started.id, grants[0].index, obs);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_EQ(first.verdict, core::TellVerdict::kAccepted);

  // Exact re-delivery: acked from the ledger, no effect.
  const auto again = manager.tell(started.id, grants[0].index, obs);
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_EQ(again.verdict, core::TellVerdict::kDuplicate);
  EXPECT_EQ(again.recorded.value_s, obs.value_s);
  EXPECT_EQ(again.recorded.cost_s, obs.cost_s);
  EXPECT_EQ(again.recorded.status, obs.status);

  // Same index, different tuple: rejected, the ledger's tuple returned.
  core::ExternalObservation conflicting = obs;
  conflicting.value_s += 1.0;
  const auto conflict =
      manager.tell(started.id, grants[0].index, conflicting);
  EXPECT_FALSE(conflict.ok);
  EXPECT_EQ(conflict.verdict, core::TellVerdict::kConflict);
  EXPECT_EQ(conflict.recorded.value_s, obs.value_s);
  EXPECT_NE(conflict.error.find("conflicts"), std::string::npos);

  // An index that was never suggested.
  const auto unknown = manager.tell(started.id, 999, obs);
  EXPECT_FALSE(unknown.ok);
  EXPECT_EQ(unknown.verdict, core::TellVerdict::kUnknown);

  // This test holds the leases for grants[1..3]; resolve them before
  // handing the session to the driver.
  tell_all(manager, started.id, {grants.begin() + 1, grants.end()});
  drive_to_completion(manager, started.id);
  wait_for_state(manager, started.id, service::SessionState::kDone);
}

// ---- the reaper ----------------------------------------------------------

TEST(ExternalSessionTest, ReaperReclaimsAtExactDeadlineTick) {
  TempDir dir("reaper");
  service::ServiceOptions options;
  options.root = dir.path();
  options.max_live = 1;
  options.lease_timeout_ticks = 5;
  service::SessionManager manager(options);

  const auto started = manager.start(external_spec(23));
  ASSERT_TRUE(started.admitted) << started.error;
  // Lease exactly one suggestion at virtual time 0 → deadline tick 5.
  const auto grants = wait_for_grants(manager, started.id, 1, 1);
  EXPECT_EQ(grants[0].deadline, 5u);

  // Ticks 1..4: the lease is live, nothing to reclaim.
  for (int t = 1; t <= 4; ++t) {
    EXPECT_EQ(manager.tick(), 0u) << "tick " << t;
  }
  {
    const auto status = manager.status(started.id);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->leased, 1u);
    EXPECT_EQ(status->reclaimed, 0u);
  }
  // Tick 5 == the deadline: the reaper reclaims on exactly this sweep.
  EXPECT_EQ(manager.tick(), 1u);
  {
    const auto status = manager.status(started.id);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->leased, 0u);
    EXPECT_EQ(status->reclaimed, 1u);
  }

  // The suggestion is back in the pool under a fresh, larger lease id —
  // ids are never reused, so an ack from the dead lease still resolves
  // by index while the audit trail stays unambiguous.
  auto again = manager.ask(started.id, 1);
  ASSERT_TRUE(again.ok) << again.error;
  ASSERT_EQ(again.grants.size(), 1u);
  EXPECT_EQ(again.grants[0].index, grants[0].index);
  EXPECT_EQ(again.grants[0].unit, grants[0].unit);
  EXPECT_GT(again.grants[0].lease, grants[0].lease);

  // The expiry was journaled before the reclaim became visible.
  core::SessionCheckpoint state;
  core::load_session_file(manager.journal_path(started.id), state,
                          core::LoadMode::kRecover);
  ASSERT_EQ(state.lease_expiries.size(), 1u);
  EXPECT_EQ(state.lease_expiries[0].index, grants[0].index);
  EXPECT_EQ(state.lease_expiries[0].lease, grants[0].lease);

  // Resolve the re-leased suggestion this test holds, then let the
  // driver finish the rest of the session.
  tell_all(manager, started.id, again.grants);
  drive_to_completion(manager, started.id);
  wait_for_state(manager, started.id, service::SessionState::kDone);
  const auto fleet = manager.service_status();
  EXPECT_EQ(fleet.reclaimed, 1u);
}

// ---- kill -9 restart -----------------------------------------------------

TEST(ExternalSessionTest, RestartRestoresPendingSetExactlyOnce) {
  TempDir dir("restart");
  TempDir image("restart-image");
  const auto spec = external_spec(24, 6, 4);
  std::vector<core::LeaseGrant> round;
  std::uint64_t id = 0;
  std::string completed_bytes;
  {
    service::ServiceOptions options;
    options.root = dir.path();
    options.max_live = 1;
    service::SessionManager manager(options);
    const auto started = manager.start(spec);
    ASSERT_TRUE(started.admitted) << started.error;
    id = started.id;
    round = wait_for_grants(manager, id, 4);

    // Resolve one suggestion, then freeze the on-disk image mid-round —
    // the exact bytes a kill -9 at this instant would leave behind
    // (suggests and the ack are journaled before they are observable).
    const auto told = manager.tell(
        id, round[0].index, fake_measurement(round[0].unit, round[0].index));
    ASSERT_TRUE(told.ok) << told.error;
    fs::copy(dir.path(), image.path(),
             fs::copy_options::recursive |
                 fs::copy_options::overwrite_existing);

    // Drive the uninterrupted original to completion for the reference
    // journal bytes (resolving the three leases this test still holds
    // first — the driver only tells what it leases itself).
    tell_all(manager, id, {round.begin() + 1, round.end()});
    drive_to_completion(manager, id);
    wait_for_state(manager, id, service::SessionState::kDone);
    completed_bytes = slurp(manager.journal_path(id));
  }

  // Restart from the frozen image: recovery must re-enter the same
  // round with exactly the three unresolved suggestions — the resolved
  // one is never re-issued, the pending ones never lost.
  service::ServiceOptions options;
  options.root = image.path();
  options.max_live = 1;
  service::SessionManager manager(options);
  const auto recovery = manager.recover_fleet();
  EXPECT_EQ(recovery.readmitted, 1u);
  EXPECT_EQ(recovery.quarantined, 0u);

  std::map<std::uint64_t, std::vector<double>> expected;
  for (std::size_t i = 1; i < round.size(); ++i) {
    expected[round[i].index] = round[i].unit;
  }
  const auto regrants = wait_for_grants(manager, id, expected.size());
  std::map<std::uint64_t, std::vector<double>> restored;
  for (const auto& grant : regrants) {
    EXPECT_NE(grant.index, round[0].index)
        << "resolved suggestion was re-issued after restart";
    // A restart voids runtime leases but keeps the id high-water mark,
    // so re-issued leases stay monotonic.
    EXPECT_GT(grant.lease, round.back().lease);
    restored[grant.index] = grant.unit;
  }
  EXPECT_EQ(restored, expected);

  // A duplicate of the pre-crash delivery still acks idempotently: the
  // ack ledger survived the restart.
  const auto dup = manager.tell(
      id, round[0].index, fake_measurement(round[0].unit, round[0].index));
  ASSERT_TRUE(dup.ok) << dup.error;
  EXPECT_EQ(dup.verdict, core::TellVerdict::kDuplicate);

  // Same executor, same tuples → the restarted session completes with
  // byte-identical journal bytes (suggests are pruned as rounds
  // resolve; acks and eval records are deterministic).  Tell the
  // regrants in index order so the ack sequence matches the
  // uninterrupted run's, then drive the final round.
  for (const auto& [idx, unit] : restored) {
    const auto told = manager.tell(id, idx, fake_measurement(unit, idx));
    ASSERT_TRUE(told.ok) << told.error;
  }
  drive_to_completion(manager, id);
  wait_for_state(manager, id, service::SessionState::kDone);
  EXPECT_EQ(slurp(manager.journal_path(id)), completed_bytes);
}

// ---- chaos: dropped and duplicated deliveries ----------------------------

TEST(ExternalSessionTest, ChaosDroppedAndDuplicatedObservesStillComplete) {
  if (!chaos::kCompiledIn) {
    GTEST_SKIP() << "built with ROBOTUNE_CHAOS=OFF";
  }
  TempDir dir("chaos");
  service::ServiceOptions options;
  options.root = dir.path();
  options.max_live = 1;
  service::SessionManager manager(options);

  chaos::ChaosProfile profile;
  ASSERT_TRUE(chaos::ChaosProfile::parse("observe=0.5", profile));
  chaos::injector().configure(profile, 11);

  const auto started = manager.start(external_spec(25));
  ASSERT_TRUE(started.admitted) << started.error;
  // drive_to_completion retries chaos-dropped deliveries blindly; the
  // harness also re-delivers accepted observations internally, which
  // the ledger must absorb as duplicates.
  drive_to_completion(manager, started.id);
  wait_for_state(manager, started.id, service::SessionState::kDone);
  chaos::injector().disarm();

  const auto status = manager.status(started.id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->evaluations, 6u);
  // Exactly one ack per evaluation made it into the ledger no matter
  // how many deliveries the chaos harness dropped or duplicated.
  core::SessionCheckpoint state;
  ASSERT_TRUE(
      core::load_session_file(manager.journal_path(started.id), state));
  EXPECT_EQ(state.observe_acks.size(), 6u);
}

// ---- eviction interplay --------------------------------------------------

TEST(ExternalSessionTest, EvictedTerminalSessionStillAnswersLateRetries) {
  TempDir dir("evict");
  service::ServiceOptions options;
  options.root = dir.path();
  options.max_live = 1;
  options.terminal_ttl_ticks = 2;
  service::SessionManager manager(options);

  const auto started = manager.start(external_spec(26));
  ASSERT_TRUE(started.admitted) << started.error;
  std::vector<core::LeaseGrant> all;
  // Capture every grant while driving so the late-retry below can
  // replay a real delivery.
  for (int spin = 0; spin < 60000; ++spin) {
    const auto status = manager.status(started.id);
    ASSERT_TRUE(status.has_value());
    if (terminal(status->state)) break;
    auto ask = manager.ask(started.id, 16);
    ASSERT_TRUE(ask.ok) << ask.error;
    if (ask.grants.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    for (const auto& grant : ask.grants) {
      const auto told = manager.tell(
          started.id, grant.index,
          fake_measurement(grant.unit, grant.index));
      ASSERT_TRUE(told.ok) << told.error;
      all.push_back(grant);
    }
  }
  wait_for_state(manager, started.id, service::SessionState::kDone);
  ASSERT_EQ(all.size(), 6u);

  // TTL eviction drops the terminal session from memory; disk files
  // stay.
  manager.tick();
  manager.tick();
  EXPECT_EQ(manager.resident_sessions(), 0u);
  EXPECT_EQ(manager.service_status().evicted, 1u);
  EXPECT_TRUE(fs::exists(manager.journal_path(started.id)));

  // A slow executor retrying a delivery long after the session ended
  // (and was evicted) still gets a truthful idempotent answer from the
  // journaled ack ledger.
  const auto dup = manager.tell(
      started.id, all[2].index,
      fake_measurement(all[2].unit, all[2].index));
  ASSERT_TRUE(dup.ok) << dup.error;
  EXPECT_EQ(dup.verdict, core::TellVerdict::kDuplicate);
  auto conflicting = fake_measurement(all[2].unit, all[2].index);
  conflicting.cost_s += 3.0;
  const auto conflict =
      manager.tell(started.id, all[2].index, conflicting);
  EXPECT_FALSE(conflict.ok);
  EXPECT_EQ(conflict.verdict, core::TellVerdict::kConflict);

  // The tell re-hydrated the session; its status came back from disk.
  EXPECT_EQ(manager.resident_sessions(), 1u);
  const auto status = manager.status(started.id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, service::SessionState::kDone);
  EXPECT_EQ(status->evaluations, 6u);
}

// ---- the verb surface ----------------------------------------------------

TEST(ExternalSessionTest, SuggestAndObserveVerbsSpeakAskTell) {
  TempDir dir("verbs");
  service::ServiceOptions options;
  options.root = dir.path();
  options.max_live = 1;
  service::SessionManager manager(options);
  service::LocalClient client(manager);

  service::Request start;
  start.verb = "start";
  start.spec_body = core::encode_spec_body(external_spec(27));
  auto response = client.call(start);
  ASSERT_TRUE(response.ok) << response.error;
  const std::uint64_t id = std::stoull(response.fields.at("id"));

  // suggest on an external session leases: records are
  // "<index> <lease> <deadline> <unit...>".
  service::Request suggest;
  suggest.verb = "suggest";
  suggest.session = id;
  suggest.limit = 2;
  for (int spin = 0; spin < 60000; ++spin) {
    response = client.call(suggest);
    ASSERT_TRUE(response.ok) << response.error;
    ASSERT_EQ(response.fields.at("mode"), "external");
    if (!response.records.empty()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(response.records.size(), 2u);
  std::istringstream record(response.records[0]);
  std::uint64_t index = 0;
  std::uint64_t lease = 0;
  std::uint64_t deadline = 0;
  ASSERT_TRUE(static_cast<bool>(record >> index >> lease >> deadline));
  std::vector<double> unit;
  double coord = 0.0;
  while (record >> coord) unit.push_back(coord);
  ASSERT_FALSE(unit.empty());

  // observe with an observation payload is a tell.
  const auto obs = fake_measurement(unit, index);
  service::Request tell;
  tell.verb = "observe";
  tell.session = id;
  tell.has_observation = true;
  tell.eval = index;
  tell.value_s = obs.value_s;
  tell.cost_s = obs.cost_s;
  tell.status = "ok";
  response = client.call(tell);
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.fields.at("verdict"), "accepted");

  // The duplicate comes back ok with the recorded tuple attached; the
  // conflict is an error that still carries the ledger's tuple.
  response = client.call(tell);
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.fields.at("verdict"), "duplicate");
  EXPECT_EQ(std::stod(response.fields.at("value")), obs.value_s);
  tell.value_s += 1.0;
  response = client.call(tell);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.fields.at("verdict"), "conflict");
  EXPECT_EQ(std::stod(response.fields.at("value")), obs.value_s);

  // A malformed status label is rejected before it reaches the ledger.
  tell.value_s = obs.value_s;
  tell.status = "mangled";
  response = client.call(tell);
  EXPECT_FALSE(response.ok);
  EXPECT_NE(response.error.find("bad status"), std::string::npos);

  // Cancel unblocks the parked engine; the session lands terminal with
  // a resumable journal.
  service::Request cancel;
  cancel.verb = "cancel";
  cancel.session = id;
  response = client.call(cancel);
  ASSERT_TRUE(response.ok) << response.error;
  manager.drain();
  const auto status = manager.status(id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, service::SessionState::kCancelled);
}

// ---- spec validation -----------------------------------------------------

TEST(ExternalSessionTest, SpecRejectsIncompatibleKnobs) {
  auto spec = external_spec(28);
  spec.tuner = "rs";
  EXPECT_NE(spec.validate().find("external"), std::string::npos);
  spec = external_spec(28);
  spec.parallel = 2;
  EXPECT_NE(spec.validate().find("external"), std::string::npos);
  spec = external_spec(28);
  spec.racing = "median";
  spec.parallel = 1;
  EXPECT_NE(spec.validate().find("external"), std::string::npos);
  spec = external_spec(28);
  spec.mode = "sideways";
  EXPECT_NE(spec.validate().find("bad session mode"), std::string::npos);
  EXPECT_TRUE(external_spec(28).validate().empty());
}

}  // namespace
}  // namespace robotune
