// Unit tests for src/common: RNG, statistics, thread pool, error helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "common/thread_pool.h"

namespace robotune {
namespace {

// ---------------------------------------------------------------- RNG ----

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng a(7);
  const std::uint64_t first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(RngTest, UniformInHalfOpenUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 2.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 2.5);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(RngTest, UniformIndexCoversAllValues) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform_index(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIndexZeroIsZero) {
  Rng rng(1);
  EXPECT_EQ(rng.uniform_index(0), 0u);
  EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalScalesMeanAndStddev) {
  Rng rng(23);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, LognormalIsPositive) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 0.5), 0.0);
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(37);
  Rng b = a.split();
  // Streams should differ from each other and from the parent's past.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

// ---------------------------------------------------------- statistics ----

TEST(StatsTest, MeanAndVariance) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(stats::mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(stats::variance(xs), 2.5);
  EXPECT_NEAR(stats::stddev(xs), std::sqrt(2.5), 1e-12);
}

TEST(StatsTest, EmptyInputsAreSafe) {
  const std::vector<double> xs;
  EXPECT_DOUBLE_EQ(stats::mean(xs), 0.0);
  EXPECT_DOUBLE_EQ(stats::variance(xs), 0.0);
  EXPECT_TRUE(std::isnan(stats::quantile(xs, 0.5)));
}

TEST(StatsTest, SingleValueVarianceZero) {
  const std::vector<double> xs = {42.0};
  EXPECT_DOUBLE_EQ(stats::variance(xs), 0.0);
}

TEST(StatsTest, QuantileInterpolates) {
  const std::vector<double> xs = {4, 1, 3, 2};  // unsorted on purpose
  EXPECT_DOUBLE_EQ(stats::quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats::quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(stats::median(xs), 2.5);
  EXPECT_DOUBLE_EQ(stats::quantile(xs, 1.0 / 3.0), 2.0);
}

TEST(StatsTest, QuantileClampsOutOfRangeQ) {
  const std::vector<double> xs = {1, 2, 3};
  EXPECT_DOUBLE_EQ(stats::quantile(xs, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(stats::quantile(xs, 2.0), 3.0);
}

TEST(StatsTest, MinMax) {
  const std::vector<double> xs = {3, -1, 7};
  EXPECT_DOUBLE_EQ(stats::min(xs), -1.0);
  EXPECT_DOUBLE_EQ(stats::max(xs), 7.0);
}

TEST(StatsTest, R2PerfectPrediction) {
  const std::vector<double> y = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(stats::r2_score(y, y), 1.0);
}

TEST(StatsTest, R2MeanPredictionIsZero) {
  const std::vector<double> y = {1, 2, 3, 4};
  const std::vector<double> pred(4, 2.5);
  EXPECT_DOUBLE_EQ(stats::r2_score(y, pred), 0.0);
}

TEST(StatsTest, R2WorseThanMeanIsNegative) {
  const std::vector<double> y = {1, 2, 3, 4};
  const std::vector<double> pred = {4, 3, 2, 1};
  EXPECT_LT(stats::r2_score(y, pred), 0.0);
}

TEST(StatsTest, R2MismatchedSizesIsNan) {
  const std::vector<double> y = {1, 2};
  const std::vector<double> pred = {1};
  EXPECT_TRUE(std::isnan(stats::r2_score(y, pred)));
}

TEST(StatsTest, RecallCountsTruePositives) {
  const std::vector<std::size_t> truth = {1, 2, 3, 4};
  const std::vector<std::size_t> pred = {2, 4, 9};
  EXPECT_DOUBLE_EQ(stats::recall(truth, pred), 0.5);
}

TEST(StatsTest, RecallEmptyTruthIsOne) {
  const std::vector<std::size_t> truth;
  const std::vector<std::size_t> pred = {1};
  EXPECT_DOUBLE_EQ(stats::recall(truth, pred), 1.0);
}

TEST(StatsTest, PearsonPerfectPositiveAndNegative) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> up = {2, 4, 6, 8};
  std::vector<double> down = {8, 6, 4, 2};
  EXPECT_NEAR(stats::pearson(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(stats::pearson(xs, down), -1.0, 1e-12);
}

TEST(StatsTest, PearsonConstantSideIsZero) {
  const std::vector<double> xs = {1, 2, 3};
  const std::vector<double> c = {5, 5, 5};
  EXPECT_DOUBLE_EQ(stats::pearson(xs, c), 0.0);
}

TEST(StatsTest, NormalPdfCdfKnownValues) {
  EXPECT_NEAR(stats::normal_pdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_NEAR(stats::normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(stats::normal_cdf(1.96), 0.9750021048517795, 1e-9);
  EXPECT_NEAR(stats::normal_cdf(-1.96), 1.0 - 0.9750021048517795, 1e-9);
}

TEST(StatsTest, SummaryQuantilesOrdered) {
  std::vector<double> xs;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) xs.push_back(rng.uniform(0, 100));
  const auto s = stats::summarize(xs);
  EXPECT_EQ(s.count, 500u);
  EXPECT_LE(s.min, s.p25);
  EXPECT_LE(s.p25, s.median);
  EXPECT_LE(s.median, s.p75);
  EXPECT_LE(s.p75, s.p90);
  EXPECT_LE(s.p90, s.max);
}

// ---------------------------------------------------------- thread pool ----

TEST(ThreadPoolTest, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(64, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, SingleWorkerFallsBackToSerial) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.parallel_for(8, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  // Serial fallback preserves order (no synchronization needed).
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPoolTest, ExceptionsPropagateFromSubmit) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPoolTest, SubmitBatchReturnsFuturesInTaskOrder) {
  ThreadPool pool(4);
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 32; ++i) {
    tasks.emplace_back([i] { return i * i; });
  }
  auto futures = pool.submit_batch(std::move(tasks));
  ASSERT_EQ(futures.size(), 32u);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, WaitAllRethrowsFirstExceptionByFutureOrder) {
  ThreadPool pool(4);
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.emplace_back([i]() -> int {
      // Both 2 and 5 fail; 2 must win regardless of completion timing.
      if (i == 5) throw std::runtime_error("task 5");
      if (i == 2) throw std::invalid_argument("task 2");
      return i;
    });
  }
  auto futures = pool.submit_batch(std::move(tasks));
  EXPECT_THROW(ThreadPool::wait_all(futures), std::invalid_argument);
  // wait_all drained every future, including the losing exception's.
  for (auto& f : futures) EXPECT_FALSE(f.valid());
}

TEST(ThreadPoolTest, WaitAllDrainsAllTasksDespiteEarlyException) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  std::vector<std::function<void()>> tasks;
  tasks.emplace_back([] { throw std::runtime_error("first"); });
  for (int i = 0; i < 16; ++i) {
    tasks.emplace_back([&completed] { completed++; });
  }
  auto futures = pool.submit_batch(std::move(tasks));
  EXPECT_THROW(ThreadPool::wait_all(futures), std::runtime_error);
  EXPECT_EQ(completed.load(), 16);
}

TEST(ThreadPoolTest, ParallelForPropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(16,
                                 [](std::size_t i) {
                                   if (i == 7) {
                                     throw std::runtime_error("body");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> completed{0};
  std::vector<std::future<void>> futures;
  {
    // One worker + many slow-ish tasks: most are still queued when the
    // pool goes out of scope.  The destructor must run them all.
    ThreadPool pool(1);
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 64; ++i) {
      tasks.emplace_back([&completed] { completed++; });
    }
    futures = pool.submit_batch(std::move(tasks));
  }
  EXPECT_EQ(completed.load(), 64);
  for (auto& f : futures) {
    EXPECT_NO_THROW(f.get());  // ready, not broken_promise
  }
}

TEST(ThreadPoolTest, DestructorDrainsPendingExceptionalTasks) {
  std::future<void> fut;
  {
    ThreadPool pool(1);
    fut = pool.submit([] { throw std::runtime_error("queued"); });
  }
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPoolTest, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

TEST(ThreadPoolTest, QueuedAndIdleWorkersReportBacklog) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.queued(), 0u);
  EXPECT_EQ(pool.idle_workers(), 1u);

  // Block the only worker, then pile tasks behind it: queued() must see
  // the backlog and idle_workers() the saturation.
  std::promise<void> gate;
  auto blocker = pool.submit([fut = gate.get_future().share()] { fut.wait(); });
  while (pool.queued() != 0 || pool.idle_workers() != 0) {
    std::this_thread::yield();  // until the worker picked the blocker up
  }
  std::vector<std::function<void()>> tasks(5, [] {});
  auto futures = pool.submit_batch(std::move(tasks));
  EXPECT_EQ(pool.queued(), 5u);
  EXPECT_EQ(pool.idle_workers(), 0u);

  gate.set_value();
  blocker.get();
  ThreadPool::wait_all(futures);
  EXPECT_EQ(pool.queued(), 0u);
  // The busy counter is decremented after the future is fulfilled, so
  // give the worker a beat to park again.
  while (pool.idle_workers() != 1) std::this_thread::yield();
}

TEST(ThreadPoolTest, ConfigureGlobalIsFirstUseOnly) {
  // Whether the request takes depends on whether any earlier test (or
  // library path) already touched global(); both outcomes are exercised
  // across the suite's build modes.  What must always hold: once the
  // global pool exists, further requests report failure instead of
  // silently doing nothing.
  const bool took = ThreadPool::configure_global(3);
  ThreadPool& pool = ThreadPool::global();
  if (took) {
    EXPECT_EQ(pool.size(), 3u);
  }
  EXPECT_FALSE(ThreadPool::configure_global(1));
  EXPECT_GE(pool.size(), 1u);
  // Restore the hardware-concurrency default request for any later
  // first-use (no-op here since global() exists, and that is the point).
  EXPECT_FALSE(ThreadPool::configure_global(0));
}

// ----------------------------------------------------------------- error ----

TEST(ErrorTest, RequireThrowsOnViolation) {
  EXPECT_THROW(require(false, "nope"), InvalidArgument);
  EXPECT_NO_THROW(require(true, "fine"));
}

}  // namespace
}  // namespace robotune
