// Unit tests for src/exec: the deterministic batch-evaluation scheduler
// and the per-evaluation objective forks it is built on.
#include <gtest/gtest.h>

#include <mutex>
#include <set>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "exec/eval_scheduler.h"
#include "sparksim/objective.h"

namespace robotune {
namespace {

sparksim::SparkObjective make_objective(std::uint64_t seed) {
  return sparksim::SparkObjective(sparksim::ClusterSpec::paper_testbed(),
                                  sparksim::make_workload(
                                      sparksim::WorkloadKind::kPageRank, 1),
                                  sparksim::spark24_config_space(), seed);
}

std::vector<std::vector<double>> make_units(std::size_t n, std::size_t dims,
                                            std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> units(n, std::vector<double>(dims));
  for (auto& u : units) {
    for (auto& x : u) x = rng.uniform();
  }
  return units;
}

std::vector<exec::EvalRequest> make_requests(
    const std::vector<std::vector<double>>& units, double threshold = 0.0) {
  std::vector<exec::EvalRequest> requests;
  for (const auto& u : units) requests.push_back({u, threshold});
  return requests;
}

void expect_outcomes_equal(const std::vector<sparksim::EvalOutcome>& a,
                           const std::vector<sparksim::EvalOutcome>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].status, b[i].status) << "outcome " << i;
    EXPECT_EQ(a[i].value_s, b[i].value_s) << "outcome " << i;
    EXPECT_EQ(a[i].cost_s, b[i].cost_s) << "outcome " << i;
    EXPECT_EQ(a[i].stopped_early, b[i].stopped_early) << "outcome " << i;
    EXPECT_EQ(a[i].transient, b[i].transient) << "outcome " << i;
    EXPECT_EQ(a[i].attempts, b[i].attempts) << "outcome " << i;
  }
}

// ------------------------------------------------------- eval seeding ----

TEST(DeriveEvalSeedTest, PureFunctionOfSeedAndIndex) {
  EXPECT_EQ(sparksim::derive_eval_seed(7, 3), sparksim::derive_eval_seed(7, 3));
  EXPECT_NE(sparksim::derive_eval_seed(7, 3), sparksim::derive_eval_seed(7, 4));
  EXPECT_NE(sparksim::derive_eval_seed(7, 3), sparksim::derive_eval_seed(8, 3));
}

TEST(ForkForEvalTest, SameIndexSameOutcome) {
  auto objective = make_objective(99);
  const auto units = make_units(1, objective.space().size(), 5);
  auto fork_a = objective.fork_for_eval(12);
  auto fork_b = objective.fork_for_eval(12);
  const auto a = fork_a.evaluate(units[0]);
  const auto b = fork_b.evaluate(units[0]);
  EXPECT_EQ(a.value_s, b.value_s);
  EXPECT_EQ(a.cost_s, b.cost_s);
}

TEST(ForkForEvalTest, IndependentOfSequentialStreamPosition) {
  auto fresh = make_objective(99);
  auto advanced = make_objective(99);
  advanced.skip_seed_draws(40);  // sequential stream far ahead
  const auto units = make_units(1, fresh.space().size(), 6);
  const auto a = fresh.fork_for_eval(3).evaluate(units[0]);
  const auto b = advanced.fork_for_eval(3).evaluate(units[0]);
  EXPECT_EQ(a.value_s, b.value_s);
}

TEST(ForkForEvalTest, MergeFoldsCountersNotSeedStream) {
  auto objective = make_objective(17);
  const auto units = make_units(1, objective.space().size(), 7);
  auto fork = objective.fork_for_eval(0);
  const auto outcome = fork.evaluate(units[0]);
  objective.merge_fork(fork);
  EXPECT_EQ(objective.evaluations(), 1u);
  EXPECT_DOUBLE_EQ(objective.total_cost_s(), outcome.cost_s);
  EXPECT_EQ(objective.seed_draws(), 0u);  // sequential stream untouched
}

// ---------------------------------------------------------- scheduler ----

TEST(EvalSchedulerTest, OutcomesIdenticalAcrossParallelism) {
  const auto units = make_units(9, make_objective(1).space().size(), 11);
  std::vector<std::vector<sparksim::EvalOutcome>> per_level;
  for (int parallelism : {1, 4, 0}) {  // 0 = hardware_concurrency
    auto objective = make_objective(123);
    exec::SchedulerOptions options;
    options.parallelism = parallelism;
    exec::EvalScheduler scheduler(options);
    per_level.push_back(
        scheduler.run_batch(objective, make_requests(units), 0));
  }
  expect_outcomes_equal(per_level[0], per_level[1]);
  expect_outcomes_equal(per_level[0], per_level[2]);
}

TEST(EvalSchedulerTest, OutcomesIdenticalWithFaultsAndRetries) {
  const auto units = make_units(12, make_objective(1).space().size(), 13);
  std::vector<std::vector<sparksim::EvalOutcome>> per_level;
  for (int parallelism : {1, 4}) {
    auto objective = make_objective(321);
    sparksim::FaultProfile faults;
    ASSERT_TRUE(
        sparksim::FaultProfile::from_preset("moderate", faults));
    objective.set_fault_profile(faults);
    sparksim::RetryPolicy retry;
    retry.max_retries = 2;
    objective.set_retry_policy(retry);
    exec::SchedulerOptions options;
    options.parallelism = parallelism;
    exec::EvalScheduler scheduler(options);
    per_level.push_back(
        scheduler.run_batch(objective, make_requests(units, 480.0), 5));
  }
  expect_outcomes_equal(per_level[0], per_level[1]);
}

TEST(EvalSchedulerTest, CountersMergeDeterministically) {
  const auto units = make_units(8, make_objective(1).space().size(), 17);
  double cost_serial = 0.0;
  for (int parallelism : {1, 4}) {
    auto objective = make_objective(55);
    exec::SchedulerOptions options;
    options.parallelism = parallelism;
    exec::EvalScheduler scheduler(options);
    const auto outcomes =
        scheduler.run_batch(objective, make_requests(units), 0);
    double total = 0.0;
    for (const auto& o : outcomes) total += o.cost_s;
    EXPECT_EQ(objective.evaluations(), units.size());
    EXPECT_DOUBLE_EQ(objective.total_cost_s(), total);
    EXPECT_EQ(objective.seed_draws(), 0u);
    if (parallelism == 1) {
      cost_serial = objective.total_cost_s();
    } else {
      EXPECT_DOUBLE_EQ(objective.total_cost_s(), cost_serial);
    }
  }
}

TEST(EvalSchedulerTest, CompletionHookSeesEveryIndexOnce) {
  const auto units = make_units(10, make_objective(1).space().size(), 19);
  auto objective = make_objective(77);
  exec::SchedulerOptions options;
  options.parallelism = 4;
  exec::EvalScheduler scheduler(options);
  std::set<std::uint64_t> indices;
  std::size_t calls = 0;
  const auto outcomes = scheduler.run_batch(
      objective, make_requests(units), 100,
      [&](const exec::CompletedEval& done) {
        // Hooks are serialized by contract; no locking needed here.
        ++calls;
        indices.insert(done.eval_index);
        EXPECT_EQ(done.eval_index, 100 + done.batch_slot);
        ASSERT_NE(done.request, nullptr);
        ASSERT_NE(done.outcome, nullptr);
        EXPECT_EQ(done.request->unit, units[done.batch_slot]);
      });
  EXPECT_EQ(calls, units.size());
  EXPECT_EQ(indices.size(), units.size());
  EXPECT_EQ(*indices.begin(), 100u);
  EXPECT_EQ(*indices.rbegin(), 100u + units.size() - 1);
  ASSERT_EQ(outcomes.size(), units.size());
}

TEST(EvalSchedulerTest, EmulatedLatencyDoesNotPerturbResults) {
  const auto units = make_units(6, make_objective(1).space().size(), 23);
  auto plain = make_objective(42);
  exec::EvalScheduler no_latency;
  const auto base = no_latency.run_batch(plain, make_requests(units), 0);

  auto slow = make_objective(42);
  exec::SchedulerOptions options;
  options.parallelism = 4;
  options.emulate_latency_per_cost_s = 1e-5;
  exec::EvalScheduler scheduler(options);
  const auto delayed = scheduler.run_batch(slow, make_requests(units), 0);
  expect_outcomes_equal(base, delayed);
}

TEST(EvalSchedulerTest, SharedExternalPoolWorks) {
  const auto units = make_units(7, make_objective(1).space().size(), 29);
  ThreadPool pool(3);
  exec::SchedulerOptions options;
  options.parallelism = 8;  // capped by the external pool's size
  options.pool = &pool;
  exec::EvalScheduler scheduler(options);
  EXPECT_LE(scheduler.parallelism(), 3);
  auto objective = make_objective(314);
  const auto shared = scheduler.run_batch(objective, make_requests(units), 0);

  auto reference = make_objective(314);
  exec::EvalScheduler serial;
  expect_outcomes_equal(serial.run_batch(reference, make_requests(units), 0),
                        shared);
}

TEST(EvalSchedulerTest, ThrowingForkLeavesParentCountersUnmerged) {
  // One malformed request (wrong-size unit) makes its fork's decode
  // throw inside the batch.  wait_all rethrows before the canonical
  // merge loop runs, so the parent objective must see NONE of the
  // batch — not a partial prefix that would depend on scheduling.
  for (int parallelism : {1, 4}) {
    auto objective = make_objective(9);
    exec::SchedulerOptions options;
    options.parallelism = parallelism;
    exec::EvalScheduler scheduler(options);
    auto units = make_units(4, objective.space().size(), 31);
    units[2].resize(3);  // decode requires a full-width unit vector
    EXPECT_THROW(scheduler.run_batch(objective, make_requests(units), 0),
                 InvalidArgument);
    EXPECT_EQ(objective.evaluations(), 0u);
    EXPECT_DOUBLE_EQ(objective.total_cost_s(), 0.0);

    // After reset_counters a clean batch merges full totals: the failed
    // batch left no hidden half-merged state behind.
    objective.reset_counters();
    const auto good = make_units(4, objective.space().size(), 31);
    const auto outcomes =
        scheduler.run_batch(objective, make_requests(good), 0);
    double total = 0.0;
    for (const auto& o : outcomes) total += o.cost_s;
    EXPECT_EQ(objective.evaluations(), 4u);
    EXPECT_DOUBLE_EQ(objective.total_cost_s(), total);
  }
}

TEST(EvalSchedulerTest, EmptyBatchIsNoop) {
  auto objective = make_objective(1);
  exec::EvalScheduler scheduler;
  const auto outcomes = scheduler.run_batch(objective, {}, 0);
  EXPECT_TRUE(outcomes.empty());
  EXPECT_EQ(objective.evaluations(), 0u);
}

}  // namespace
}  // namespace robotune
