// Tests for the evaluation lifecycle layer: KillReason round-trips,
// cooperative cancellation tokens, per-evaluation deadlines, racing
// early-stop (median rule / successive halving), kill accounting
// (censoring + budget refund), and checkpoint/resume compatibility of
// racing sessions.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/chaos.h"
#include "common/error.h"
#include "common/rng.h"
#include "core/persistence.h"
#include "core/robotune.h"
#include "exec/eval_scheduler.h"
#include "obs/metrics.h"
#include "sparksim/lifecycle.h"
#include "sparksim/objective.h"
#include "tuners/tuner.h"

namespace robotune {
namespace {

using sparksim::CancellationToken;
using sparksim::EvalLifecycle;
using sparksim::KillReason;
using sparksim::RunStatus;
using sparksim::StageProgress;

sparksim::SparkObjective make_objective(std::uint64_t seed = 123) {
  return sparksim::SparkObjective(sparksim::ClusterSpec::paper_testbed(),
                                  sparksim::make_workload(
                                      sparksim::WorkloadKind::kPageRank, 1),
                                  sparksim::spark24_config_space(), seed);
}

std::vector<std::vector<double>> make_units(std::size_t n, std::size_t dims,
                                            std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> units(n, std::vector<double>(dims));
  for (auto& u : units) {
    for (auto& x : u) x = rng.uniform();
  }
  return units;
}

std::vector<exec::EvalRequest> make_requests(
    const std::vector<std::vector<double>>& units, double threshold = 0.0) {
  std::vector<exec::EvalRequest> requests;
  for (const auto& u : units) requests.push_back({u, threshold});
  return requests;
}

void expect_outcomes_equal(const std::vector<sparksim::EvalOutcome>& a,
                           const std::vector<sparksim::EvalOutcome>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].status, b[i].status) << "outcome " << i;
    EXPECT_EQ(a[i].value_s, b[i].value_s) << "outcome " << i;
    EXPECT_EQ(a[i].cost_s, b[i].cost_s) << "outcome " << i;
    EXPECT_EQ(a[i].stopped_early, b[i].stopped_early) << "outcome " << i;
    EXPECT_EQ(a[i].transient, b[i].transient) << "outcome " << i;
    EXPECT_EQ(a[i].attempts, b[i].attempts) << "outcome " << i;
    EXPECT_EQ(a[i].kill_reason, b[i].kill_reason) << "outcome " << i;
  }
}

/// Median of the value_s of a plain (racing-off) batch: the tests derive
/// deadlines and thresholds from it instead of hard-coding simulator
/// timings.
double baseline_median(const std::vector<std::vector<double>>& units,
                       std::uint64_t seed) {
  auto objective = make_objective(seed);
  exec::EvalScheduler scheduler;
  const auto outcomes =
      scheduler.run_batch(objective, make_requests(units), 0);
  std::vector<double> values;
  for (const auto& o : outcomes) values.push_back(o.value_s);
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

// -------------------------------------------------------- KillReason ----

TEST(KillReasonTest, RoundTripsEveryEnumerator) {
  for (KillReason r : sparksim::all_kill_reasons()) {
    const auto label = to_string(r);
    const auto back = sparksim::kill_reason_from_string(label);
    ASSERT_TRUE(back.has_value()) << label;
    EXPECT_EQ(*back, r) << label;
  }
}

TEST(KillReasonTest, LabelsAreUniqueAndUnknownIsRejected) {
  std::set<std::string> labels;
  for (KillReason r : sparksim::all_kill_reasons()) {
    labels.insert(to_string(r));
  }
  EXPECT_EQ(labels.size(), sparksim::all_kill_reasons().size());
  EXPECT_EQ(to_string(static_cast<KillReason>(999)), "unknown");
  EXPECT_FALSE(sparksim::kill_reason_from_string("unknown").has_value());
  EXPECT_FALSE(sparksim::kill_reason_from_string("bogus").has_value());
}

TEST(KillReasonTest, NewRunStatusLabelsRoundTrip) {
  EXPECT_EQ(to_string(RunStatus::kKilled), "killed");
  EXPECT_EQ(to_string(RunStatus::kPreempted), "preempted");
  EXPECT_EQ(*sparksim::run_status_from_string("killed"), RunStatus::kKilled);
  EXPECT_EQ(*sparksim::run_status_from_string("preempted"),
            RunStatus::kPreempted);
}

// -------------------------------------------------------- RacingMode ----

TEST(RacingModeTest, RoundTripsAndRejectsUnknown) {
  for (exec::RacingMode mode : {exec::RacingMode::kOff,
                                exec::RacingMode::kMedian,
                                exec::RacingMode::kHalving}) {
    exec::RacingMode back;
    ASSERT_TRUE(exec::racing_mode_from_string(to_string(mode), back));
    EXPECT_EQ(back, mode);
  }
  exec::RacingMode out;
  EXPECT_FALSE(exec::racing_mode_from_string("hyperband", out));
  EXPECT_FALSE(exec::racing_mode_from_string("", out));
}

TEST(RacingModeTest, SignatureEncodesModeAndDeadline) {
  exec::RacingOptions off;
  EXPECT_EQ(exec::racing_signature(off), "off");
  EXPECT_FALSE(off.active());

  exec::RacingOptions median;
  median.mode = exec::RacingMode::kMedian;
  EXPECT_TRUE(median.active());
  EXPECT_EQ(exec::racing_signature(median), "median");

  exec::RacingOptions deadline;
  deadline.deadline_s = 120.5;
  EXPECT_TRUE(deadline.active());
  const auto sig = exec::racing_signature(deadline);
  EXPECT_NE(sig.find("deadline=120.5"), std::string::npos) << sig;
  // One whitespace-free token: the journal stores it as a single field.
  EXPECT_EQ(sig.find(' '), std::string::npos) << sig;

  exec::RacingOptions both;
  both.mode = exec::RacingMode::kHalving;
  both.deadline_s = 300.0;
  const auto both_sig = exec::racing_signature(both);
  EXPECT_NE(both_sig.find("halving"), std::string::npos) << both_sig;
  EXPECT_NE(both_sig.find("deadline=300"), std::string::npos) << both_sig;
}

// ------------------------------------------------- CancellationToken ----

TEST(CancellationTokenTest, FirstReasonWinsAndResetClears) {
  CancellationToken token;
  EXPECT_FALSE(token.kill_requested());
  EXPECT_EQ(token.requested(), KillReason::kNone);

  token.request(KillReason::kNone);  // no-op: kNone never arms the token
  EXPECT_FALSE(token.kill_requested());

  token.request(KillReason::kDeadline);
  EXPECT_TRUE(token.kill_requested());
  EXPECT_EQ(token.requested(), KillReason::kDeadline);

  token.request(KillReason::kMedianRule);  // losers never overwrite
  EXPECT_EQ(token.requested(), KillReason::kDeadline);

  token.reset();
  EXPECT_FALSE(token.kill_requested());
  token.request(KillReason::kHalvingRung);
  EXPECT_EQ(token.requested(), KillReason::kHalvingRung);
}

// ---------------------------------------------------------- lifecycle ----

TEST(LifecycleTest, ProgressHookReportsMonotoneProgress) {
  auto objective = make_objective();
  // A configuration that completes healthily on the paper testbed (the
  // space defaults OOM there; same shape as sparksim_test's tuned run).
  auto values = objective.space().defaults();
  const auto set = [&](const char* n, double val) {
    values[*objective.space().index_of(n)] = val;
  };
  set("spark.executor.cores", 8);
  set("spark.executor.memory.mb", 32768);
  set("spark.memory.fraction", 0.7);
  set("spark.serializer", 1);
  set("spark.default.parallelism", 400);
  set("spark.executor.gc", 1);
  std::vector<StageProgress> seen;
  EvalLifecycle lifecycle;
  lifecycle.progress = [&](const StageProgress& p) { seen.push_back(p); };
  const auto out = objective.evaluate_decoded(
      values, /*stop_threshold_s=*/0.0, /*apply_cap=*/false, &lifecycle);
  ASSERT_EQ(out.status, RunStatus::kOk);
  ASSERT_FALSE(seen.empty());
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_GE(seen[i].fraction, seen[i - 1].fraction) << i;
    EXPECT_GE(seen[i].sim_elapsed_s, seen[i - 1].sim_elapsed_s) << i;
    EXPECT_EQ(seen[i].total_stages, seen[0].total_stages) << i;
  }
  EXPECT_EQ(seen.back().stages_done, seen.back().total_stages);
  EXPECT_DOUBLE_EQ(seen.back().fraction, 1.0);
}

TEST(LifecycleTest, RequestedTokenKillsAtTheFirstStageBoundary) {
  auto objective = make_objective();
  const auto units = make_units(1, objective.space().size(), 3);

  const auto full = objective.evaluate(units[0]);

  CancellationToken token;
  token.request(KillReason::kMedianRule);
  EvalLifecycle lifecycle;
  lifecycle.token = &token;
  const auto killed = objective.evaluate(units[0], /*stop_threshold_s=*/0.0,
                                         &lifecycle);
  EXPECT_EQ(killed.status, RunStatus::kKilled);
  EXPECT_EQ(killed.kill_reason, KillReason::kMedianRule);
  EXPECT_TRUE(killed.transient);  // censored: partial time is a lower bound
  EXPECT_EQ(killed.attempts, 1);  // a killed config is never retried
  // The charge is the partial simulated time, strictly below a full run.
  EXPECT_GT(killed.cost_s, 0.0);
  EXPECT_LT(killed.cost_s, full.cost_s);
}

TEST(LifecycleTest, NullLifecycleMatchesNoLifecycle) {
  auto plain = make_objective(7);
  auto with_null = make_objective(7);
  const auto units = make_units(3, plain.space().size(), 9);
  for (const auto& u : units) {
    const auto a = plain.evaluate(u);
    const auto b = with_null.evaluate(u, 0.0, nullptr);
    EXPECT_EQ(a.value_s, b.value_s);
    EXPECT_EQ(a.cost_s, b.cost_s);
    EXPECT_EQ(a.status, b.status);
  }
}

// --------------------------------------------------- scheduler racing ----

TEST(SchedulerRacingTest, RacingOffMatchesPlainScheduler) {
  const auto units = make_units(8, make_objective().space().size(), 11);
  auto plain = make_objective(55);
  exec::EvalScheduler no_racing;
  const auto base = no_racing.run_batch(plain, make_requests(units, 480.0), 0);

  auto with_off = make_objective(55);
  exec::SchedulerOptions options;
  options.parallelism = 4;
  options.racing.mode = exec::RacingMode::kOff;  // explicit off
  exec::EvalScheduler scheduler(options);
  EXPECT_FALSE(scheduler.racing().active());
  const auto off =
      scheduler.run_batch(with_off, make_requests(units, 480.0), 0);
  expect_outcomes_equal(base, off);
  for (const auto& o : off) EXPECT_NE(o.status, RunStatus::kKilled);
}

TEST(SchedulerRacingTest, DeadlineKillsEveryRunThatOutlivesIt) {
  const auto units = make_units(10, make_objective().space().size(), 13);
  const double deadline = 0.75 * baseline_median(units, 55);

  auto objective = make_objective(55);
  exec::SchedulerOptions options;
  options.racing.deadline_s = deadline;
  exec::EvalScheduler scheduler(options);
  const auto outcomes =
      scheduler.run_batch(objective, make_requests(units, 480.0), 0);

  std::size_t kills = 0;
  for (const auto& o : outcomes) {
    if (o.status == RunStatus::kKilled) {
      ++kills;
      EXPECT_EQ(o.kill_reason, KillReason::kDeadline);
      EXPECT_TRUE(o.transient);
      // Censored at the frozen threshold, charged the partial time.
      EXPECT_DOUBLE_EQ(o.value_s, 480.0);
      EXPECT_LT(o.cost_s, 480.0);
    } else {
      // Survivors finished under the deadline (the final stage boundary
      // checks the token too, so no run can outlive it unkilled).
      EXPECT_LE(o.raw.seconds, deadline);
    }
  }
  EXPECT_GT(kills, 0u);
  EXPECT_LT(kills, outcomes.size());  // the deadline spares the fast half
}

void expect_racing_parallel_invariant(exec::RacingMode mode,
                                      double deadline_s, bool with_faults) {
  const auto units = make_units(12, make_objective().space().size(), 17);
  const double threshold = baseline_median(units, 321);
  std::vector<std::vector<sparksim::EvalOutcome>> per_level;
  for (int parallelism : {1, 4}) {
    auto objective = make_objective(321);
    if (with_faults) {
      sparksim::FaultProfile faults;
      ASSERT_TRUE(sparksim::FaultProfile::from_preset("moderate", faults));
      faults.preemption_per_stage = 0.05;
      objective.set_fault_profile(faults);
      sparksim::RetryPolicy retry;
      retry.max_retries = 2;
      objective.set_retry_policy(retry);
    }
    exec::SchedulerOptions options;
    options.parallelism = parallelism;
    options.racing.mode = mode;
    options.racing.deadline_s = deadline_s;
    exec::EvalScheduler scheduler(options);
    per_level.push_back(
        scheduler.run_batch(objective, make_requests(units, threshold), 5));
  }
  expect_outcomes_equal(per_level[0], per_level[1]);
  std::size_t kills = 0;
  for (const auto& o : per_level[0]) {
    if (o.status == RunStatus::kKilled) ++kills;
  }
  EXPECT_GT(kills, 0u);  // the policy actually raced something
}

TEST(SchedulerRacingTest, MedianRacingIdenticalAcrossParallelism) {
  expect_racing_parallel_invariant(exec::RacingMode::kMedian, 0.0, false);
}

TEST(SchedulerRacingTest, HalvingRacingIdenticalAcrossParallelism) {
  expect_racing_parallel_invariant(exec::RacingMode::kHalving, 0.0, false);
}

TEST(SchedulerRacingTest, RacingIdenticalUnderFaultsAndPreemptions) {
  expect_racing_parallel_invariant(exec::RacingMode::kMedian, 0.0, true);
}

TEST(SchedulerRacingTest, KillsAreCensoredRefundedAndCounted) {
  if (obs::kCompiledIn) obs::metrics().reset();
  const auto units = make_units(10, make_objective().space().size(), 19);
  const double deadline = 0.75 * baseline_median(units, 99);

  auto objective = make_objective(99);
  exec::SchedulerOptions options;
  options.parallelism = 4;
  options.racing.deadline_s = deadline;
  exec::EvalScheduler scheduler(options);

  tuners::GuardPolicy guard(/*static_threshold_s=*/480.0,
                            /*median_multiple=*/0.0);
  tuners::TuningResult result;
  const auto evals = tuners::evaluate_batch_into(scheduler, objective, units,
                                                 guard, result);
  std::size_t kills = 0, clean = 0;
  for (const auto& e : evals) {
    if (e.status == RunStatus::kKilled) {
      ++kills;
      EXPECT_TRUE(e.transient);
      EXPECT_EQ(e.kill_reason, KillReason::kDeadline);
      // The refund: the charge is the partial time, not the threshold a
      // guard stop would have paid.
      EXPECT_LT(e.cost_s, 480.0);
    } else if (e.ok() && !e.stopped_early) {
      ++clean;
    }
  }
  ASSERT_GT(kills, 0u);
  // Killed runs are censored: they never feed the guard median.
  EXPECT_EQ(guard.observations(), clean);
  if (obs::kCompiledIn) {
    const auto snapshot = obs::metrics().snapshot();
    EXPECT_EQ(snapshot.counters.at("evals.killed"), kills);
    EXPECT_EQ(snapshot.counters.at("exec.racing.kills"), kills);
    EXPECT_EQ(snapshot.counters.at("exec.racing.kills.deadline"), kills);
    EXPECT_EQ(snapshot.counters.at("evals.censored"), kills);
  }
}

TEST(SchedulerRacingTest, DroppedCancellationDeliveryDelaysTheKill) {
  if (!chaos::kCompiledIn) GTEST_SKIP() << "chaos hooks compiled out";
  const auto units = make_units(6, make_objective().space().size(), 23);
  const double deadline = 0.5 * baseline_median(units, 77);

  // With every cancellation delivery dropped, the token is requested but
  // never honored: runs go to completion (or the guard cap) instead.
  chaos::ChaosProfile profile;
  profile.cancel_delivery_failure = 1.0;
  chaos::injector().configure(profile, 42);
  auto objective = make_objective(77);
  exec::SchedulerOptions options;
  options.racing.deadline_s = deadline;
  exec::EvalScheduler scheduler(options);
  const auto outcomes =
      scheduler.run_batch(objective, make_requests(units, 480.0), 0);
  chaos::injector().disarm();
  for (const auto& o : outcomes) {
    EXPECT_NE(o.status, RunStatus::kKilled);
  }

  // Same batch with delivery intact: the deadline lands.
  auto honored = make_objective(77);
  exec::EvalScheduler control(options);
  const auto killed =
      control.run_batch(honored, make_requests(units, 480.0), 0);
  std::size_t kills = 0;
  for (const auto& o : killed) {
    if (o.status == RunStatus::kKilled) ++kills;
  }
  EXPECT_GT(kills, 0u);
}

// ----------------------------------------------- checkpoint & resume ----

constexpr int kBudget = 20;
constexpr std::uint64_t kSeed = 5;

sparksim::SparkObjective make_session_objective() {
  return sparksim::SparkObjective(
      sparksim::ClusterSpec{},
      sparksim::make_workload(sparksim::WorkloadKind::kTeraSort, 1),
      sparksim::spark24_config_space(), 13);
}

core::RoboTuneOptions fast_robotune() {
  core::RoboTuneOptions options;
  options.selection.generic_samples = 50;
  options.selection.forest_trees = 60;
  options.selection.permutation_repeats = 2;
  options.bo.initial_samples = 10;
  options.bo.hyperfit_every = 10;
  options.bo.batch_size = 2;
  return options;
}

core::RoboTuneReport run_session(core::SessionLog* session, int parallelism,
                                 const exec::RacingOptions& racing) {
  auto objective = make_session_objective();
  core::RoboTune tuner(fast_robotune());
  exec::SchedulerOptions options;
  options.parallelism = parallelism;
  options.racing = racing;
  exec::EvalScheduler scheduler(options);
  return tuner.tune_report(objective, kBudget, kSeed, nullptr, session,
                           &scheduler);
}

exec::RacingOptions deadline_racing(double deadline_s) {
  exec::RacingOptions racing;
  racing.deadline_s = deadline_s;
  return racing;
}

void expect_results_equal(const tuners::TuningResult& a,
                          const tuners::TuningResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].unit, b.history[i].unit) << "evaluation " << i;
    EXPECT_EQ(a.history[i].value_s, b.history[i].value_s) << i;
    EXPECT_EQ(a.history[i].cost_s, b.history[i].cost_s) << i;
    EXPECT_EQ(a.history[i].status, b.history[i].status) << i;
    EXPECT_EQ(a.history[i].kill_reason, b.history[i].kill_reason) << i;
  }
  EXPECT_EQ(a.best_index, b.best_index);
  EXPECT_DOUBLE_EQ(a.search_cost_s, b.search_cost_s);
}

TEST(RacingSessionTest, RacingOffJournalHasNoRacingOrKillRecords) {
  core::SessionLog session;
  run_session(&session, 2, exec::RacingOptions{});
  EXPECT_TRUE(session.state.racing_mode.empty());
  EXPECT_TRUE(session.state.kill_events.empty());
  std::stringstream out;
  core::save_session(session.state, out);
  const auto text = out.str();
  // Byte-identity guarantee: a racing-off journal never mentions the
  // racing layer at all.
  EXPECT_EQ(text.find("racing"), std::string::npos);
  EXPECT_EQ(text.find("kill"), std::string::npos);
}

TEST(RacingSessionTest, RacingSessionJournalsKillsAndRoundTrips) {
  core::SessionLog session;
  run_session(&session, 2, deadline_racing(100.0));
  EXPECT_EQ(session.state.racing_mode,
            exec::racing_signature(deadline_racing(100.0)));
  ASSERT_FALSE(session.state.kill_events.empty());
  std::size_t killed_evals = 0;
  for (const auto& e : session.state.evaluations) {
    if (e.status == RunStatus::kKilled) ++killed_evals;
  }
  EXPECT_EQ(session.state.kill_events.size(), killed_evals);

  std::stringstream out;
  core::save_session(session.state, out);
  core::SessionCheckpoint loaded;
  core::load_session(out, loaded);
  EXPECT_EQ(loaded.racing_mode, session.state.racing_mode);
  ASSERT_EQ(loaded.kill_events.size(), session.state.kill_events.size());
  for (std::size_t i = 0; i < loaded.kill_events.size(); ++i) {
    EXPECT_EQ(loaded.kill_events[i].index,
              session.state.kill_events[i].index);
    EXPECT_EQ(loaded.kill_events[i].reason,
              session.state.kill_events[i].reason);
  }
}

TEST(RacingSessionTest, RacingSessionResumesIdentically) {
  const auto racing = deadline_racing(100.0);
  core::SessionLog full;
  const auto uninterrupted = run_session(&full, 4, racing);
  ASSERT_EQ(full.state.evaluations.size(),
            static_cast<std::size_t>(kBudget));
  ASSERT_FALSE(full.state.kill_events.empty());

  for (std::size_t kept : {0u, 6u, 13u}) {
    core::SessionLog resumed;
    resumed.state = full.state;
    resumed.state.evaluations.resize(kept);
    core::canonicalize_journal(resumed.state);
    const auto continued = run_session(&resumed, 7, racing);
    SCOPED_TRACE("kept=" + std::to_string(kept));
    expect_results_equal(uninterrupted.tuning, continued.tuning);
    EXPECT_EQ(resumed.state.kill_events.size(),
              full.state.kill_events.size());
  }
}

TEST(RacingSessionTest, CrossRacingModeResumeIsRefused) {
  core::SessionLog raced;
  run_session(&raced, 2, deadline_racing(100.0));

  // A racing journal must not resume racing-off...
  {
    core::SessionLog resumed;
    resumed.state = raced.state;
    resumed.state.evaluations.resize(8);
    core::canonicalize_journal(resumed.state);
    EXPECT_THROW(run_session(&resumed, 2, exec::RacingOptions{}),
                 InvalidArgument);
  }
  // ...nor under a different deadline...
  {
    core::SessionLog resumed;
    resumed.state = raced.state;
    resumed.state.evaluations.resize(8);
    core::canonicalize_journal(resumed.state);
    EXPECT_THROW(run_session(&resumed, 2, deadline_racing(150.0)),
                 InvalidArgument);
  }
  // ...and a racing-off journal must not resume under racing.
  core::SessionLog plain;
  run_session(&plain, 2, exec::RacingOptions{});
  {
    core::SessionLog resumed;
    resumed.state = plain.state;
    resumed.state.evaluations.resize(8);
    EXPECT_THROW(run_session(&resumed, 2, deadline_racing(100.0)),
                 InvalidArgument);
  }
}

}  // namespace
}  // namespace robotune
