// Tier-1 service-layer suite (DESIGN.md §13): wire protocol framing,
// spec codec, admission control, fair scheduling, cancellation, and
// fleet-wide crash recovery.
//
// The determinism contract under test is the strongest one the daemon
// makes: a hosted session's journal is byte-identical to a standalone
// `robotune_cli`-style run of the same spec, regardless of how many
// sessions run beside it, how many pool workers the manager has, or how
// many turnstile slots rotate the CPU — and after a crash, every
// recovered session finishes with exactly the bytes an uninterrupted
// run would have produced.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/persistence.h"
#include "core/session.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/session_manager.h"

namespace robotune {
namespace {

namespace fs = std::filesystem;

// Small-but-real sessions: full selection + BO stack, dialed down so a
// fleet of them fits tier-1 time on one core.
core::SessionSpec small_spec(std::uint64_t seed, int budget = 8) {
  core::SessionSpec spec;
  spec.workload = "PR";
  spec.dataset = 1;
  spec.tuner = "robotune";
  spec.budget = budget;
  spec.seed = seed;
  spec.parallel = 1;
  spec.init = 4;
  spec.selection_samples = 20;
  return spec;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    root_ = fs::temp_directory_path() /
            ("robotune-service-" + tag + "-" +
             std::to_string(::getpid()));
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }
  std::string path() const { return root_.string(); }
  std::string file(const std::string& name) const {
    return (root_ / name).string();
  }

 private:
  fs::path root_;
};

/// Runs `spec` standalone — the CLI's code path — journaling to `path`.
void run_standalone(core::SessionSpec spec, const std::string& path) {
  spec.checkpoint_path = path;
  std::string error;
  auto session = core::SessionFactory::create(spec, &error);
  ASSERT_NE(session, nullptr) << error;
  const auto outcome = session->run();
  ASSERT_TRUE(outcome.ok()) << outcome.error;
}

void wait_for_state(service::SessionManager& manager, std::uint64_t id,
                    service::SessionState state) {
  for (int i = 0; i < 20000; ++i) {
    const auto status = manager.status(id);
    ASSERT_TRUE(status.has_value());
    if (status->state == state) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "session " << id << " never reached state "
         << service::to_string(state);
}

void wait_for_evals(service::SessionManager& manager, std::uint64_t id,
                    std::size_t evals) {
  for (int i = 0; i < 20000; ++i) {
    const auto status = manager.status(id);
    ASSERT_TRUE(status.has_value());
    if (status->evaluations >= evals) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "session " << id << " never journaled " << evals
         << " evaluations";
}

// ------------------------------------------------------------ protocol ----

TEST(ServiceProtocolTest, EscapeRoundTripsArbitraryStrings) {
  const std::vector<std::string> cases = {
      "", "plain", "two words", "k=v", "100%", "a\nb\tc\rd",
      "%20 already escaped", std::string("\0embedded", 9)};
  for (const auto& s : cases) {
    std::string back;
    ASSERT_TRUE(service::unescape(service::escape(s), back)) << s;
    EXPECT_EQ(back, s);
  }
  // Escaped output never contains a token or line separator.
  const std::string escaped = service::escape("a b=c\nd");
  EXPECT_EQ(escaped.find(' '), std::string::npos);
  EXPECT_EQ(escaped.find('='), std::string::npos);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);

  std::string out;
  EXPECT_FALSE(service::unescape("trailing%2", out));
  EXPECT_FALSE(service::unescape("bad%zz", out));
}

TEST(ServiceProtocolTest, FrameReaderHandlesSplitAndBatchedFrames) {
  const std::string frames = service::frame_message("first message") +
                             service::frame_message("second") +
                             service::frame_message("third one");
  // Feed in awkward 3-byte chunks: frames arrive regardless of read
  // boundaries.
  service::FrameReader reader;
  std::vector<std::string> payloads;
  for (std::size_t off = 0; off < frames.size(); off += 3) {
    reader.feed(std::string_view(frames).substr(off, 3));
    std::string payload, error;
    while (reader.next(payload, error) ==
           service::FrameReader::Result::kReady) {
      payloads.push_back(payload);
    }
  }
  ASSERT_EQ(payloads.size(), 3u);
  EXPECT_EQ(payloads[0], "first message");
  EXPECT_EQ(payloads[1], "second");
  EXPECT_EQ(payloads[2], "third one");
}

TEST(ServiceProtocolTest, FrameReaderPoisonsOnCorruption) {
  service::FrameReader reader;
  std::string good = service::frame_message("fine");
  good[0] = good[0] == '0' ? '1' : '0';  // break the CRC
  reader.feed(good);
  std::string payload, error;
  EXPECT_EQ(reader.next(payload, error),
            service::FrameReader::Result::kCorrupt);
  EXPECT_FALSE(error.empty());
  // Poisoned: even a valid follow-up frame is refused — the stream can
  // no longer be trusted.
  reader.feed(service::frame_message("valid"));
  EXPECT_EQ(reader.next(payload, error),
            service::FrameReader::Result::kCorrupt);
}

TEST(ServiceProtocolTest, RequestAndResponseRoundTrip) {
  service::Request request;
  request.verb = "start";
  request.rid = 42;
  request.session = 7;
  request.from = 3;
  request.limit = 10;
  request.derive_seed = true;
  request.spec_body = core::encode_spec_body(small_spec(99));

  service::Request back;
  std::string error;
  ASSERT_TRUE(service::decode_request(service::encode_request(request), back,
                                      error))
      << error;
  EXPECT_EQ(back.verb, request.verb);
  EXPECT_EQ(back.rid, request.rid);
  EXPECT_EQ(back.session, request.session);
  EXPECT_EQ(back.from, request.from);
  EXPECT_EQ(back.limit, request.limit);
  EXPECT_EQ(back.derive_seed, request.derive_seed);
  EXPECT_EQ(back.spec_body, request.spec_body);

  service::Response response;
  response.ok = false;
  response.rid = 42;
  response.error = "queue full (8 pending); retry later";
  service::Response rback;
  ASSERT_TRUE(service::decode_response(service::encode_response(response),
                                       rback, error))
      << error;
  EXPECT_FALSE(rback.ok);
  EXPECT_EQ(rback.rid, 42u);
  EXPECT_EQ(rback.error, response.error);

  response = service::Response{};
  response.ok = true;
  response.rid = 43;
  response.fields["best"] = "41.52";
  response.fields["unit"] = "0.5 0.25 1";
  response.records = {"0 0 178.5", "1 3 480"};
  ASSERT_TRUE(service::decode_response(service::encode_response(response),
                                       rback, error))
      << error;
  EXPECT_TRUE(rback.ok);
  EXPECT_EQ(rback.fields, response.fields);
  EXPECT_EQ(rback.records, response.records);
}

// ---------------------------------------------------------- spec codec ----

TEST(ServiceSpecTest, SpecBodyRoundTripsAllTuningFields) {
  core::SessionSpec spec = small_spec(123, 17);
  spec.workload = "TS";
  spec.dataset = 3;
  spec.metric = "coreseconds";
  spec.fault_profile = "loss=0.1,fetch=0.05,straggler=0.02";
  spec.retries = 3;
  spec.preempt_rate = 0.25;
  spec.parallel = 4;
  spec.batch = 2;
  spec.racing = "median";
  spec.eval_deadline = 120.5;
  spec.surrogate = "rff";
  spec.rff_features = 128;
  spec.refit = "doubling";

  core::SessionSpec back;
  std::string error;
  ASSERT_TRUE(core::decode_spec_body(core::encode_spec_body(spec), back,
                                     &error))
      << error;
  EXPECT_EQ(core::encode_spec_body(back), core::encode_spec_body(spec));
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.budget, spec.budget);
  EXPECT_EQ(back.racing, spec.racing);
  EXPECT_DOUBLE_EQ(back.eval_deadline, spec.eval_deadline);
  EXPECT_EQ(back.surrogate, spec.surrogate);
  EXPECT_EQ(back.rff_features, spec.rff_features);
  EXPECT_EQ(back.refit, spec.refit);

  // The spec is the determinism contract: unknown keys are corruption,
  // not extensibility.
  core::SessionSpec scratch;
  EXPECT_FALSE(
      core::decode_spec_body("workload=PR surprise=1", scratch, &error));
}

TEST(ServiceSpecTest, SpecBodyRejectsMalformedNumericValues) {
  // Same contract as unknown keys: a malformed numeric value must fail
  // the decode, not silently become 0 (seed=abc replaying a different
  // session than the one that was started).
  const std::string good = core::encode_spec_body(small_spec(77));
  core::SessionSpec scratch;
  std::string error;
  ASSERT_TRUE(core::decode_spec_body(good, scratch, &error)) << error;

  const auto swap_field = [&](const std::string& key,
                              const std::string& value) {
    std::istringstream tokens(good);
    std::ostringstream out;
    std::string token;
    bool first = true;
    while (tokens >> token) {
      if (!first) out << ' ';
      first = false;
      if (token.rfind(key + "=", 0) == 0) {
        out << key << '=' << value;
      } else {
        out << token;
      }
    }
    return out.str();
  };

  for (const auto& [key, value] :
       std::vector<std::pair<std::string, std::string>>{
           {"seed", "abc"},
           {"seed", "12x"},
           {"seed", "-1"},
           {"seed", ""},
           {"budget", "eight"},
           {"budget", "8garbage"},
           {"dataset", ""},
           {"preempt", "0..5"},
           {"preempt", "nan"},
           {"deadline", "soon"},
           {"surrogate", "bogus"},
           {"refit", "sometimes"},
           {"rff", "-1"}}) {
    core::SessionSpec spec;
    EXPECT_FALSE(
        core::decode_spec_body(swap_field(key, value), spec, &error))
        << key << '=' << value;
  }
}

TEST(ServiceSpecTest, SpecFileDetectsCorruption) {
  TempDir dir("spec");
  const auto spec = small_spec(5);
  const std::string path = dir.file("s.spec");
  ASSERT_TRUE(core::save_spec_file(spec, path));

  core::SessionSpec back;
  std::string error;
  ASSERT_TRUE(core::load_spec_file(path, back, &error)) << error;
  EXPECT_EQ(core::encode_spec_body(back), core::encode_spec_body(spec));

  // Flip one payload byte: the CRC frame must reject the file.
  std::string bytes = slurp(path);
  bytes[bytes.size() / 2] ^= 0x20;
  std::ofstream(path, std::ios::binary) << bytes;
  EXPECT_FALSE(core::load_spec_file(path, back, &error));
  EXPECT_FALSE(error.empty());
}

TEST(ServiceSpecTest, ValidateRejectsBadCombinations) {
  core::SessionSpec spec = small_spec(1);
  spec.tuner = "unknown-tuner";
  EXPECT_FALSE(spec.validate().empty());

  spec = small_spec(1);
  spec.racing = "median";
  spec.parallel = 0;  // racing needs the scheduler
  EXPECT_FALSE(spec.validate().empty());

  spec = small_spec(1);
  spec.budget = 2;  // below the initial design
  EXPECT_FALSE(spec.validate().empty());

  EXPECT_TRUE(small_spec(1).validate().empty());
}

// ----------------------------------------------------------- admission ----

TEST(ServiceAdmissionTest, BackpressureRejectsBeyondQueueBound) {
  TempDir dir("admit");
  service::ServiceOptions options;
  options.root = dir.path();
  options.max_live = 1;
  options.max_pending = 1;
  service::SessionManager manager(options);

  // A long-enough session to hold the single worker while we probe.
  const auto a = manager.start(small_spec(1, /*budget=*/24));
  ASSERT_TRUE(a.admitted) << a.error;
  wait_for_state(manager, a.id, service::SessionState::kRunning);

  const auto b = manager.start(small_spec(2, 24));
  ASSERT_TRUE(b.admitted) << b.error;  // fits the pending queue

  const auto c = manager.start(small_spec(3, 24));
  EXPECT_FALSE(c.admitted);  // backpressure, not an unbounded queue
  EXPECT_NE(c.error.find("queue full"), std::string::npos) << c.error;

  const auto d = manager.start([] {
    auto s = small_spec(4);
    s.tuner = "rs";  // hosted sessions must journal → robotune only
    return s;
  }());
  EXPECT_FALSE(d.admitted);
  EXPECT_NE(d.error.find("robotune"), std::string::npos) << d.error;

  manager.shutdown(/*cancel_live=*/true);
  const auto s = manager.service_status();
  EXPECT_EQ(s.queued + s.running, 0u);
  EXPECT_FALSE(s.accepting);
}

// -------------------------------------------------------- cancellation ----

TEST(ServiceCancelTest, CancelStopsAtRoundBoundaryWithResumableJournal) {
  TempDir dir("cancel");
  service::ServiceOptions options;
  options.root = dir.path();
  options.max_live = 1;
  service::SessionManager manager(options);

  const auto started = manager.start(small_spec(7, /*budget=*/200));
  ASSERT_TRUE(started.admitted) << started.error;
  wait_for_evals(manager, started.id, 2);

  std::string why;
  ASSERT_TRUE(manager.cancel(started.id, &why)) << why;
  wait_for_state(manager, started.id, service::SessionState::kCancelled);

  const auto status = manager.status(started.id);
  ASSERT_TRUE(status.has_value());
  EXPECT_GE(status->evaluations, 2u);
  EXPECT_LT(status->evaluations, 200u);  // stopped long before budget

  // The journal on disk is a loadable prefix, and the explicit cancel
  // left a tombstone so a restart keeps the session cancelled.
  core::SessionCheckpoint state;
  ASSERT_TRUE(core::load_session_file(manager.journal_path(started.id),
                                      state, core::LoadMode::kStrict));
  EXPECT_EQ(state.evaluations.size(), status->evaluations);
  EXPECT_TRUE(fs::exists(dir.file("session-" +
                                  std::to_string(started.id) +
                                  ".cancelled")));

  // Cancelling a terminal session reports why instead of succeeding.
  EXPECT_FALSE(manager.cancel(started.id, &why));
  EXPECT_NE(why.find("cancelled"), std::string::npos) << why;
}

// ---------------------------------------- interleaved determinism ---------

TEST(ServiceDeterminismTest, InterleavedSessionsMatchStandaloneByteForByte) {
  // Eight seeded sessions, twice: once on a 1-worker/1-slot manager
  // (fully serialized) and once on a 4-worker manager with round-robin
  // slicing (maximally interleaved).  Every journal must equal the
  // standalone run's bytes — concurrency is wall-clock only.
  constexpr int kSessions = 8;
  TempDir standalone_dir("solo");
  std::vector<std::string> expected(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    const std::string path =
        standalone_dir.file("solo-" + std::to_string(i) + ".journal");
    run_standalone(small_spec(100 + i), path);
    expected[i] = slurp(path);
    ASSERT_FALSE(expected[i].empty());
  }

  struct Config {
    std::size_t max_live;
    std::size_t slots;
  };
  for (const Config config : {Config{1, 1}, Config{4, 2}, Config{4, 0}}) {
    SCOPED_TRACE("max_live " + std::to_string(config.max_live) + " slots " +
                 std::to_string(config.slots));
    TempDir dir("fleet");
    service::ServiceOptions options;
    options.root = dir.path();
    options.max_live = config.max_live;
    options.slots = config.slots;
    options.max_pending = kSessions;
    service::SessionManager manager(options);

    std::vector<std::uint64_t> ids;
    for (int i = 0; i < kSessions; ++i) {
      const auto started = manager.start(small_spec(100 + i));
      ASSERT_TRUE(started.admitted) << started.error;
      ids.push_back(started.id);
    }
    manager.drain();

    for (int i = 0; i < kSessions; ++i) {
      const auto status = manager.status(ids[static_cast<std::size_t>(i)]);
      ASSERT_TRUE(status.has_value());
      EXPECT_EQ(status->state, service::SessionState::kDone)
          << status->error;
      EXPECT_EQ(slurp(manager.journal_path(ids[static_cast<std::size_t>(i)])),
                expected[static_cast<std::size_t>(i)])
          << "session " << i;
    }
  }
}

TEST(ServiceDeterminismTest, DerivedSeedsAreStableAcrossRestarts) {
  // Seeding discipline: with derive_seed, the session seed is a pure
  // function of (service seed, session id) — two fleets with the same
  // service seed produce byte-identical journals.
  std::vector<std::string> journals[2];
  for (int round = 0; round < 2; ++round) {
    TempDir dir("derive");
    service::ServiceOptions options;
    options.root = dir.path();
    options.max_live = 2;
    options.seed = 4242;
    service::SessionManager manager(options);
    for (int i = 0; i < 3; ++i) {
      const auto started =
          manager.start(small_spec(0), /*derive_seed=*/true);
      ASSERT_TRUE(started.admitted) << started.error;
    }
    manager.drain();
    for (std::uint64_t id = 1; id <= 3; ++id) {
      journals[round].push_back(slurp(manager.journal_path(id)));
    }
  }
  EXPECT_EQ(journals[0], journals[1]);
  // Different sessions got different seeds (the journals differ).
  EXPECT_NE(journals[0][0], journals[0][1]);
}

// ------------------------------------------------------ fleet recovery ----

TEST(ServiceRecoveryTest, RestartResumesFleetAndQuarantinesCorruptSession) {
  TempDir dir("recover");
  service::ServiceOptions options;
  options.root = dir.path();
  // All three sessions live at once so every journal is mid-flight when
  // the "crash" hits.
  options.max_live = 3;
  options.max_pending = 8;

  // Expected end states, computed standalone.
  TempDir solo("recover-solo");
  std::vector<std::string> expected;
  for (std::uint64_t seed : {21, 22, 23}) {
    const std::string path =
        solo.file("solo-" + std::to_string(seed) + ".journal");
    run_standalone(small_spec(seed, /*budget=*/40), path);
    expected.push_back(slurp(path));
  }

  std::uint64_t ids[3];
  {
    service::SessionManager manager(options);
    int i = 0;
    for (std::uint64_t seed : {21, 22, 23}) {
      const auto started = manager.start(small_spec(seed, 40));
      ASSERT_TRUE(started.admitted) << started.error;
      ids[i++] = started.id;
    }
    // Let every session make partial progress, then "crash" the daemon:
    // cancel-and-drain leaves the exact on-disk state a kill -9 would,
    // minus the torn tail — which the test inflicts by hand below.
    for (const auto id : ids) wait_for_evals(manager, id, 3);
    manager.shutdown(/*cancel_live=*/true);
  }

  // Wreck session 2's journal beyond recovery: the header itself.
  {
    std::ofstream out(dir.file("session-" + std::to_string(ids[1]) +
                               ".journal"),
                      std::ios::binary);
    out << "robotune-garbage v9\nnot a frame\n";
  }
  // Tear session 3's journal tail — the kill -9 case; recover mode must
  // truncate and resume, not quarantine.
  {
    const std::string path =
        dir.file("session-" + std::to_string(ids[2]) + ".journal");
    std::string bytes = slurp(path);
    ASSERT_GT(bytes.size(), 10u);
    std::ofstream(path, std::ios::binary)
        << bytes.substr(0, bytes.size() - 7) << "torn";
  }

  service::SessionManager restarted(options);
  const auto recovery = restarted.recover_fleet();
  EXPECT_EQ(recovery.quarantined, 1u);
  EXPECT_EQ(recovery.readmitted, 2u);
  EXPECT_EQ(recovery.completed, 0u);
  ASSERT_FALSE(recovery.quarantined_files.empty());
  EXPECT_TRUE(fs::exists(dir.file("quarantine")));
  EXPECT_FALSE(fs::exists(restarted.spec_path(ids[1])));

  restarted.drain();
  // Both surviving sessions finished with exactly the bytes an
  // uninterrupted run produces.
  const auto s1 = restarted.status(ids[0]);
  ASSERT_TRUE(s1.has_value());
  EXPECT_EQ(s1->state, service::SessionState::kDone) << s1->error;
  EXPECT_TRUE(s1->resumed);
  EXPECT_GE(s1->replayed, 3u);
  EXPECT_EQ(slurp(restarted.journal_path(ids[0])), expected[0]);

  const auto s3 = restarted.status(ids[2]);
  ASSERT_TRUE(s3.has_value());
  EXPECT_EQ(s3->state, service::SessionState::kDone) << s3->error;
  EXPECT_EQ(slurp(restarted.journal_path(ids[2])), expected[2]);

  EXPECT_FALSE(restarted.status(ids[1]).has_value());  // quarantined
}

TEST(ServiceRecoveryTest, ReadmissionBypassesBackpressureAndNeverQuarantines) {
  // A pre-crash fleet can legitimately hold max_live running plus
  // max_pending queued incomplete sessions.  Recovery re-admission must
  // bypass the max_pending bound (backpressure gates external starts) —
  // before this was fixed, the overflow sessions' perfectly valid spec
  // and journal files were quarantined as if corrupt.
  constexpr int kSessions = 3;
  TempDir dir("readmit");
  service::ServiceOptions roomy;
  roomy.root = dir.path();
  roomy.max_live = 2;
  roomy.max_pending = kSessions;

  std::uint64_t ids[kSessions];
  {
    service::SessionManager manager(roomy);
    for (int i = 0; i < kSessions; ++i) {
      const auto started =
          manager.start(small_spec(61 + static_cast<std::uint64_t>(i),
                                   /*budget=*/16));
      ASSERT_TRUE(started.admitted) << started.error;
      ids[i] = started.id;
    }
    // Partial progress on the running pair, then "crash".
    wait_for_evals(manager, ids[0], 2);
    manager.shutdown(/*cancel_live=*/true);
  }

  // Restart with a queue bound smaller than the surviving fleet: every
  // incomplete session must still come back, and none may be moved to
  // quarantine/.
  service::ServiceOptions tight = roomy;
  tight.max_live = 1;
  tight.max_pending = 1;
  service::SessionManager restarted(tight);
  const auto recovery = restarted.recover_fleet();
  EXPECT_EQ(recovery.readmitted, static_cast<std::size_t>(kSessions));
  EXPECT_EQ(recovery.quarantined, 0u);
  EXPECT_EQ(recovery.failed, 0u);
  EXPECT_TRUE(recovery.errors.empty());
  EXPECT_FALSE(fs::exists(dir.file("quarantine")));

  // Every session is registered and its files are still in place.
  // (RestartResumesFleet... covers readmitted sessions running to
  // byte-identical completion; this test pins the admission decision, so
  // stop the fleet instead of paying for three full runs.)
  restarted.shutdown(/*cancel_live=*/true);
  for (int i = 0; i < kSessions; ++i) {
    const auto status = restarted.status(ids[i]);
    ASSERT_TRUE(status.has_value()) << "session " << i;
    EXPECT_NE(status->state, service::SessionState::kFailed)
        << status->error;
    EXPECT_TRUE(fs::exists(restarted.spec_path(ids[i]))) << "session " << i;
  }
}

TEST(ServiceRecoveryTest, TombstonedAndCompletedSessionsStayTerminal) {
  TempDir dir("terminal");
  service::ServiceOptions options;
  options.root = dir.path();
  options.max_live = 2;

  std::uint64_t done_id = 0, cancelled_id = 0;
  {
    service::SessionManager manager(options);
    const auto done = manager.start(small_spec(31, /*budget=*/8));
    ASSERT_TRUE(done.admitted);
    done_id = done.id;
    const auto cancelled = manager.start(small_spec(32, /*budget=*/200));
    ASSERT_TRUE(cancelled.admitted);
    cancelled_id = cancelled.id;
    wait_for_evals(manager, cancelled_id, 1);
    ASSERT_TRUE(manager.cancel(cancelled_id));
    manager.drain();
  }

  service::SessionManager restarted(options);
  const auto recovery = restarted.recover_fleet();
  EXPECT_EQ(recovery.completed, 1u);
  EXPECT_EQ(recovery.cancelled, 1u);
  EXPECT_EQ(recovery.readmitted, 0u);
  EXPECT_EQ(recovery.quarantined, 0u);

  const auto done_status = restarted.status(done_id);
  ASSERT_TRUE(done_status.has_value());
  EXPECT_EQ(done_status->state, service::SessionState::kDone);
  EXPECT_EQ(done_status->evaluations, 8u);
  EXPECT_LT(done_status->best_value_s,
            std::numeric_limits<double>::infinity());

  const auto cancelled_status = restarted.status(cancelled_id);
  ASSERT_TRUE(cancelled_status.has_value());
  EXPECT_EQ(cancelled_status->state, service::SessionState::kCancelled);
}

// ------------------------------------------------- dispatch / clients ----

TEST(ServiceDispatchTest, LocalClientDrivesFullVerbSet) {
  TempDir dir("dispatch");
  service::ServiceOptions options;
  options.root = dir.path();
  options.max_live = 2;
  service::SessionManager manager(options);
  service::LocalClient client(manager);

  service::Request start;
  start.verb = "start";
  start.spec_body = core::encode_spec_body(small_spec(55));
  auto response = client.call(start);
  ASSERT_TRUE(response.ok) << response.error;
  const std::uint64_t id = std::stoull(response.fields.at("id"));

  manager.drain();

  service::Request status;
  status.verb = "status";
  status.session = id;
  response = client.call(status);
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.fields.at("state"), "done");
  EXPECT_EQ(response.fields.at("evals"), "8");

  service::Request suggest;
  suggest.verb = "suggest";
  suggest.session = id;
  response = client.call(suggest);
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_FALSE(response.fields.at("unit").empty());
  EXPECT_GT(std::stod(response.fields.at("best")), 0.0);

  service::Request observe;
  observe.verb = "observe";
  observe.session = id;
  observe.from = 2;
  observe.limit = 3;
  response = client.call(observe);
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.fields.at("total"), "8");
  ASSERT_EQ(response.records.size(), 3u);
  // Records lead with the evaluation index, starting at `from`.
  EXPECT_EQ(response.records[0].substr(0, 2), "2 ");

  service::Request checkpoint;
  checkpoint.verb = "checkpoint";
  checkpoint.session = id;
  response = client.call(checkpoint);
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.fields.at("journal"), manager.journal_path(id));

  service::Request bogus;
  bogus.verb = "frobnicate";
  response = client.call(bogus);
  EXPECT_FALSE(response.ok);
  EXPECT_NE(response.error.find("unknown verb"), std::string::npos);

  service::Request cancel;
  cancel.verb = "cancel";
  cancel.session = 999;
  response = client.call(cancel);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error, "no such session");

  // Service-wide status (session 0).
  service::Request fleet;
  fleet.verb = "status";
  response = client.call(fleet);
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.fields.at("done"), "1");
  EXPECT_EQ(response.fields.at("accepting"), "1");

  // The in-process path deliberately refuses shutdown (socket-only).
  service::Request shutdown;
  shutdown.verb = "shutdown";
  response = client.call(shutdown);
  EXPECT_FALSE(response.ok);
}

// Minimal scripted peer: listens on a Unix socket, accepts one client,
// reads one request, and answers with a caller-supplied sequence of
// response frames.  Exists to exercise SocketClient's response/rid
// matching without a full daemon in the loop.
class ScriptedPeer {
 public:
  explicit ScriptedPeer(const std::string& path) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
    ::unlink(path.c_str());
    ::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
           sizeof(addr));
    ::listen(listen_fd_, 1);
  }
  ~ScriptedPeer() {
    if (thread_.joinable()) thread_.join();
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  /// Accepts one connection, waits for one request frame, then sends
  /// every response in order.  Runs on a background thread.
  void respond_with(std::vector<service::Response> responses) {
    thread_ = std::thread([this, responses = std::move(responses)] {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      ASSERT_GE(fd, 0);
      char buffer[4096];
      const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
      ASSERT_GT(n, 0);
      for (const auto& response : responses) {
        const std::string frame =
            service::frame_message(service::encode_response(response));
        ASSERT_EQ(::send(fd, frame.data(), frame.size(), 0),
                  static_cast<ssize_t>(frame.size()));
      }
      ::close(fd);
    });
  }

 private:
  int listen_fd_ = -1;
  std::thread thread_;
};

TEST(ServiceSocketClientTest, SkipsStaleFramesAndMatchesRid) {
  // A client that hit a transport error mid-call can find the previous
  // request's late reply in the stream on its next call.  call() must
  // skip the stale frame (mismatched rid) and return the one answering
  // the in-flight request — never mis-attribute.
  TempDir dir("rid-stale");
  const std::string path = dir.file("peer.sock");
  ScriptedPeer peer(path);

  service::Response stale;
  stale.ok = true;
  stale.rid = 7;  // not the rid call() will send
  stale.fields["id"] = "999";
  service::Response fresh;
  fresh.ok = true;
  fresh.fields["id"] = "1";
  // SocketClient numbers requests from 1.
  fresh.rid = 1;
  peer.respond_with({stale, fresh});

  service::SocketClient client;
  ASSERT_TRUE(client.connect(path));
  service::Request request;
  request.verb = "status";
  service::Response response;
  std::string error;
  ASSERT_TRUE(client.call(request, response, &error)) << error;
  EXPECT_EQ(response.rid, 1u);
  EXPECT_EQ(response.fields.at("id"), "1");
}

TEST(ServiceSocketClientTest, FailsDistinctlyOnServerStreamError) {
  // rid 0 is the server's corrupt-request-stream error frame — the
  // server cuts the connection after sending it, so the client must
  // fail the call rather than keep waiting for a matching rid.
  TempDir dir("rid-zero");
  const std::string path = dir.file("peer.sock");
  ScriptedPeer peer(path);

  service::Response err;
  err.ok = false;
  err.rid = 0;
  err.error = "frame checksum mismatch";
  peer.respond_with({err});

  service::SocketClient client;
  ASSERT_TRUE(client.connect(path));
  service::Request request;
  request.verb = "status";
  service::Response response;
  std::string error;
  EXPECT_FALSE(client.call(request, response, &error));
  EXPECT_NE(error.find("server stream error"), std::string::npos) << error;
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
  EXPECT_FALSE(client.connected());
}

TEST(ServiceServerTest, DropsClientsThatNeverCompleteAFrame) {
  // A client that connects and then stalls — never sending a frame, or
  // stopping mid-frame — must not hold a connection slot forever.  The
  // serve loop's idle sweep drops it, while a healthy client that
  // completed a frame and merely sits quiet between requests stays.
  TempDir dir("idle-drop");
  service::ServiceOptions options;
  options.root = dir.path();
  options.max_live = 1;
  service::SessionManager manager(options);
  service::Server server(manager, dir.file("rt.sock"));
  std::string error;
  ASSERT_TRUE(server.listen(&error)) << error;
  server.set_idle_timeout(std::chrono::milliseconds(200));
  std::atomic<bool> stop{false};
  std::thread serve_thread([&] { server.serve(stop); });

  const auto raw_connect = [&] {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                  dir.file("rt.sock").c_str());
    EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    return fd;
  };
  // Dropped connections surface as EOF on the peer's next read.
  const auto wait_for_eof = [](int fd) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    char byte = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      const ssize_t n = ::recv(fd, &byte, 1, MSG_DONTWAIT);
      if (n == 0) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  };

  // A healthy client completes one request up front.
  service::SocketClient healthy;
  ASSERT_TRUE(healthy.connect(dir.file("rt.sock"), &error)) << error;
  service::Request status;
  status.verb = "status";
  service::Response response;
  ASSERT_TRUE(healthy.call(status, response, &error)) << error;
  ASSERT_TRUE(response.ok);

  const int silent = raw_connect();       // never sends a byte
  const int stalled = raw_connect();      // stops mid-frame
  const std::string frame = service::frame_message(
      service::encode_request([] {
        service::Request r;
        r.verb = "status";
        r.rid = 1;
        return r;
      }()));
  ASSERT_GT(::send(stalled, frame.data(), frame.size() / 2, MSG_NOSIGNAL),
            0);

  EXPECT_TRUE(wait_for_eof(silent)) << "silent client was never dropped";
  EXPECT_TRUE(wait_for_eof(stalled)) << "mid-frame client was never dropped";
  ::close(silent);
  ::close(stalled);

  // The healthy-idle client survived both sweeps and still works.
  ASSERT_TRUE(healthy.call(status, response, &error)) << error;
  EXPECT_TRUE(response.ok);

  healthy.close();
  stop.store(true);
  serve_thread.join();
}

TEST(ServiceEvictionTest, ThousandTerminalSessionsEvictToDiskAndRehydrate) {
  // Residency regression for long-lived daemons (ROADMAP 5): terminal
  // sessions leave the in-memory map after the TTL, their disk files
  // stay, and any verb re-hydrates them on demand.  One real session
  // provides the journal; cloning its files 999× makes a 1000-session
  // terminal fleet cheap enough for tier 1.
  TempDir dir("evict-1k");
  {
    service::ServiceOptions options;
    options.root = dir.path();
    options.max_live = 1;
    service::SessionManager manager(options);
    const auto started = manager.start(small_spec(41, 6));
    ASSERT_TRUE(started.admitted) << started.error;
    manager.drain();
  }
  for (int id = 2; id <= 1000; ++id) {
    fs::copy_file(dir.file("session-1.spec"),
                  dir.file("session-" + std::to_string(id) + ".spec"));
    fs::copy_file(dir.file("session-1.journal"),
                  dir.file("session-" + std::to_string(id) + ".journal"));
  }

  service::ServiceOptions options;
  options.root = dir.path();
  options.max_live = 1;
  options.terminal_ttl_ticks = 3;
  service::SessionManager manager(options);
  const auto recovery = manager.recover_fleet();
  EXPECT_EQ(recovery.completed, 1000u);
  EXPECT_EQ(manager.resident_sessions(), 1000u);

  // All re-registrations happened at tick 0, so the whole fleet crosses
  // the TTL on tick 3.
  manager.tick();
  manager.tick();
  EXPECT_EQ(manager.resident_sessions(), 1000u);
  manager.tick();
  EXPECT_EQ(manager.resident_sessions(), 0u);
  {
    const auto fleet = manager.service_status();
    EXPECT_EQ(fleet.done, 1000u);
    EXPECT_EQ(fleet.evicted, 1000u);
  }

  // Verbs against an evicted id re-hydrate from the intact disk files.
  const auto status = manager.status(707);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, service::SessionState::kDone);
  EXPECT_EQ(status->evaluations, 6u);
  EXPECT_EQ(manager.resident_sessions(), 1u);
  const auto observed = manager.observe(999, 0, 0);
  ASSERT_TRUE(observed.ok) << observed.error;
  EXPECT_EQ(observed.total, 6u);
  EXPECT_EQ(manager.resident_sessions(), 2u);

  // The O(1) counters and the O(n) recount agree with the eviction
  // ledger folded in — nothing was lost or double-counted.
  const auto recount = manager.recount_status();
  EXPECT_EQ(recount.done, 1000u);
  EXPECT_EQ(recount.evicted, 998u);
  const auto incremental = manager.service_status();
  EXPECT_EQ(incremental.done, recount.done);
  EXPECT_EQ(incremental.evicted, recount.evicted);
}

TEST(ServiceTurnstileTest, YieldRotatesFifoWithoutSelfDeadlock) {
  // A lone session yields without blocking (keeps its slice), and two
  // sessions on one slot hand the CPU back and forth in FIFO order.
  service::Turnstile turnstile(1);
  turnstile.enter(1);
  turnstile.yield(1);  // nobody waiting: must not block
  std::atomic<int> entered{0};
  std::thread second([&] {
    turnstile.enter(2);
    entered.store(1);
    turnstile.leave();
  });
  // The second session is parked until the first yields.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(entered.load(), 0);
  turnstile.yield(1);  // hands the slice to session 2, re-queues FIFO
  second.join();
  EXPECT_EQ(entered.load(), 1);
  turnstile.leave();
}

}  // namespace
}  // namespace robotune
