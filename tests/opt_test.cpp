// Tests for the bound-constrained L-BFGS optimizer and multistart driver.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "opt/lbfgsb.h"

namespace robotune::opt {
namespace {

Objective quadratic(std::vector<double> center) {
  return [center = std::move(center)](std::span<const double> x,
                                      std::span<double> grad) {
    double v = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - center[i];
      v += d * d;
      if (!grad.empty()) grad[i] = 2.0 * d;
    }
    return v;
  };
}

TEST(BoundsTest, ClipProjectsIntoBox) {
  Bounds b = Bounds::unit_cube(3);
  std::vector<double> x = {-0.5, 0.5, 1.5};
  b.clip(x);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
  EXPECT_DOUBLE_EQ(x[1], 0.5);
  EXPECT_DOUBLE_EQ(x[2], 1.0);
}

TEST(LbfgsbTest, UnconstrainedQuadraticConverges) {
  const auto obj = quadratic({0.3, 0.7, 0.5});
  Bounds b = Bounds::unit_cube(3);
  const std::vector<double> x0 = {0.9, 0.1, 0.0};
  const auto r = minimize(obj, x0, b);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 0.3, 1e-5);
  EXPECT_NEAR(r.x[1], 0.7, 1e-5);
  EXPECT_NEAR(r.x[2], 0.5, 1e-5);
  EXPECT_NEAR(r.value, 0.0, 1e-9);
}

TEST(LbfgsbTest, OptimumOutsideBoxLandsOnBoundary) {
  const auto obj = quadratic({1.5, -0.5});
  Bounds b = Bounds::unit_cube(2);
  const std::vector<double> x0 = {0.5, 0.5};
  const auto r = minimize(obj, x0, b);
  EXPECT_NEAR(r.x[0], 1.0, 1e-6);
  EXPECT_NEAR(r.x[1], 0.0, 1e-6);
}

TEST(LbfgsbTest, StartOutsideBoxIsClippedFirst) {
  const auto obj = quadratic({0.5});
  Bounds b = Bounds::unit_cube(1);
  const std::vector<double> x0 = {7.0};
  const auto r = minimize(obj, x0, b);
  EXPECT_NEAR(r.x[0], 0.5, 1e-6);
}

TEST(LbfgsbTest, RosenbrockInBox) {
  const Objective rosen = [](std::span<const double> x,
                             std::span<double> grad) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    if (!grad.empty()) {
      grad[0] = -2.0 * a - 400.0 * x[0] * b;
      grad[1] = 200.0 * b;
    }
    return a * a + 100.0 * b * b;
  };
  Bounds bounds;
  bounds.lower = {-2, -2};
  bounds.upper = {2, 2};
  LbfgsbOptions options;
  options.max_iterations = 500;
  const auto r = minimize(rosen, std::vector<double>{-1.2, 1.0}, bounds,
                          options);
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.x[1], 1.0, 1e-3);
}

TEST(LbfgsbTest, DimensionMismatchThrows) {
  const auto obj = quadratic({0.5});
  Bounds b = Bounds::unit_cube(2);
  EXPECT_THROW(minimize(obj, std::vector<double>{0.1}, b), InvalidArgument);
}

TEST(LbfgsbTest, InvertedBoundsThrow) {
  const auto obj = quadratic({0.5});
  Bounds b;
  b.lower = {1.0};
  b.upper = {0.0};
  EXPECT_THROW(minimize(obj, std::vector<double>{0.5}, b), InvalidArgument);
}

TEST(NumericGradientTest, MatchesAnalyticGradient) {
  const auto numeric = numeric_gradient(
      [](std::span<const double> x) {
        return std::sin(x[0]) + x[1] * x[1];
      });
  std::vector<double> grad(2);
  const double v = numeric(std::vector<double>{0.3, 0.7}, grad);
  EXPECT_NEAR(v, std::sin(0.3) + 0.49, 1e-12);
  EXPECT_NEAR(grad[0], std::cos(0.3), 1e-5);
  EXPECT_NEAR(grad[1], 1.4, 1e-5);
}

TEST(NumericGradientTest, SkipsGradientWhenEmpty) {
  int calls = 0;
  const auto numeric = numeric_gradient([&](std::span<const double>) {
    ++calls;
    return 1.0;
  });
  std::vector<double> empty;
  numeric(std::vector<double>{0.5}, empty);
  EXPECT_EQ(calls, 1);  // value only, no finite differences
}

TEST(MultistartTest, FindsGlobalMinimumOfMultimodal) {
  // f(x) = sin(12x) + 2(x-0.7)^2 has several local minima in [0,1]; the
  // global one sits where sin is near its -1 trough closest to 0.7,
  // x ≈ 0.916 (f ≈ -0.906); the rival trough at x ≈ 0.393 gives only -0.81.
  const auto f = [](std::span<const double> x) {
    return std::sin(12.0 * x[0]) + 2.0 * (x[0] - 0.7) * (x[0] - 0.7);
  };
  const auto obj = numeric_gradient(f);
  Rng rng(5);
  MultiStartOptions options;
  options.starts = 8;
  options.probe_candidates = 64;
  const auto r = multistart_minimize(obj, Bounds::unit_cube(1), rng, options);
  EXPECT_NEAR(r.x[0], 0.916, 0.05);
}

TEST(MultistartTest, WarmStartIsUsed) {
  const auto obj = quadratic({0.123, 0.456});
  Rng rng(6);
  MultiStartOptions options;
  options.starts = 1;
  options.probe_candidates = 1;
  const std::vector<std::vector<double>> warm = {{0.12, 0.46}};
  const auto r = multistart_minimize(obj, Bounds::unit_cube(2), rng, options,
                                     warm);
  EXPECT_NEAR(r.x[0], 0.123, 1e-4);
  EXPECT_NEAR(r.x[1], 0.456, 1e-4);
}

TEST(MultistartTest, NeverWorseThanBestProbe) {
  // Even on a nasty discontinuous objective the result can't be worse than
  // pure random probing, by construction.
  const auto f = [](std::span<const double> x) {
    return x[0] < 0.37 ? std::floor(x[0] * 10.0) : 5.0;
  };
  const auto obj = numeric_gradient(f);
  Rng rng(7);
  MultiStartOptions options;
  options.probe_candidates = 200;
  const auto r = multistart_minimize(obj, Bounds::unit_cube(1), rng, options);
  EXPECT_LE(r.value, 3.0 + 1e-9);
}

TEST(MultistartTest, EmptyBoundsThrow) {
  const auto obj = quadratic({});
  Rng rng(8);
  EXPECT_THROW(multistart_minimize(obj, Bounds{}, rng), InvalidArgument);
}

// --------------------------------------------- parallel multi-start ----

TEST(MinimizeStartsTest, PicksCanonicalBestAcrossStarts) {
  // Multimodal objective from the multistart test; two starts land in
  // different basins and the global one must win.
  const auto factory = []() {
    return numeric_gradient([](std::span<const double> x) {
      return std::sin(12.0 * x[0]) + 2.0 * (x[0] - 0.7) * (x[0] - 0.7);
    });
  };
  const std::vector<std::vector<double>> starts = {{0.4}, {0.9}};
  const auto r = minimize_starts(factory, starts, Bounds::unit_cube(1));
  EXPECT_NEAR(r.x[0], 0.916, 0.05);
  EXPECT_GT(r.evaluations, 2);  // summed across both starts
}

TEST(MinimizeStartsTest, ByteIdenticalAcrossWorkerCounts) {
  const auto factory = []() {
    return numeric_gradient([](std::span<const double> x) {
      double v = 0.0;
      for (std::size_t i = 0; i < x.size(); ++i) {
        v += std::sin(9.0 * x[i] + static_cast<double>(i)) +
             (x[i] - 0.5) * (x[i] - 0.5);
      }
      return v;
    });
  };
  std::vector<std::vector<double>> starts;
  Rng rng(99);
  for (int s = 0; s < 6; ++s) {
    starts.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
  }
  const Bounds bounds = Bounds::unit_cube(3);
  const auto inline_r = minimize_starts(factory, starts, bounds);
  ThreadPool pool2(2);
  ThreadPool pool4(4);
  for (ThreadPool* pool : {&pool2, &pool4}) {
    const auto r = minimize_starts(factory, starts, bounds, {}, pool);
    EXPECT_EQ(r.value, inline_r.value);
    EXPECT_EQ(r.evaluations, inline_r.evaluations);
    ASSERT_EQ(r.x.size(), inline_r.x.size());
    for (std::size_t i = 0; i < r.x.size(); ++i) {
      EXPECT_EQ(r.x[i], inline_r.x[i]);  // exact, not approximate
    }
  }
}

TEST(MinimizeStartsTest, TieBreaksOnLowestStartIndex) {
  // A flat objective makes every start "win" with the same value; the
  // canonical reduction must return the first start's (clipped) point.
  const auto factory = []() -> Objective {
    return [](std::span<const double>, std::span<double> grad) {
      std::fill(grad.begin(), grad.end(), 0.0);
      return 1.0;
    };
  };
  const std::vector<std::vector<double>> starts = {{0.25}, {0.75}};
  const auto r = minimize_starts(factory, starts, Bounds::unit_cube(1));
  EXPECT_DOUBLE_EQ(r.x[0], 0.25);
}

TEST(MinimizeStartsTest, EmptyStartsThrow) {
  const auto factory = []() { return quadratic({0.5}); };
  EXPECT_THROW(minimize_starts(factory, {}, Bounds::unit_cube(1)),
               InvalidArgument);
}

// Parameterized: quadratic minimization converges from any corner start.
class LbfgsbStartTest : public ::testing::TestWithParam<int> {};

TEST_P(LbfgsbStartTest, ConvergesFromCorner) {
  const int corner = GetParam();
  const auto obj = quadratic({0.4, 0.6, 0.2});
  std::vector<double> x0(3);
  for (int i = 0; i < 3; ++i) x0[static_cast<std::size_t>(i)] =
      (corner >> i) & 1 ? 1.0 : 0.0;
  const auto r = minimize(obj, x0, Bounds::unit_cube(3));
  EXPECT_NEAR(r.value, 0.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Corners, LbfgsbStartTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace robotune::opt
