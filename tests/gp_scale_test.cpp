// Tests for the O(n³)-wall work (DESIGN.md §15): rank-1 remove_point
// against refit-from-scratch, bit-identical LIFO round-trips, the RFF
// tier's analytic gradients and fidelity, constant-liar purge counters,
// worker-count invariance of batched sessions, geometric factor growth,
// workspace reuse across tiers, and the chaos-injected degrade rungs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/chaos.h"
#include "common/error.h"
#include "common/rng.h"
#include "core/robotune.h"
#include "exec/eval_scheduler.h"
#include "gp/gaussian_process.h"
#include "gp/kernel.h"
#include "gp/rff_gp.h"
#include "gp/surrogate.h"
#include "obs/metrics.h"
#include "sparksim/objective.h"
#include "tuners/tuner.h"

namespace robotune {
namespace {

using sparksim::WorkloadKind;

void make_data(std::size_t n, std::size_t dims, std::uint64_t seed,
               std::vector<std::vector<double>>& xs,
               std::vector<double>& ys) {
  Rng rng(seed);
  xs.assign(n, std::vector<double>(dims));
  ys.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& c : xs[i]) c = rng.uniform();
    ys[i] = std::sin(3.0 * xs[i][0]) + 0.5 * xs[i][dims - 1] +
            0.1 * std::cos(7.0 * xs[i][1 % dims]);
  }
}

std::vector<std::vector<double>> make_probes(std::size_t count,
                                             std::size_t dims,
                                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> probes(count, std::vector<double>(dims));
  for (auto& p : probes) {
    for (auto& c : p) c = rng.uniform();
  }
  return probes;
}

gp::GpOptions fixed_hypers() {
  gp::GpOptions options;
  options.optimize_hyperparameters = false;
  return options;
}

sparksim::SparkObjective make_objective(std::uint64_t seed = 13) {
  return sparksim::SparkObjective(
      sparksim::ClusterSpec{},
      sparksim::make_workload(WorkloadKind::kTeraSort, 1),
      sparksim::spark24_config_space(), seed);
}

core::RoboTuneOptions fast_robotune() {
  core::RoboTuneOptions options;
  options.selection.generic_samples = 50;
  options.selection.forest_trees = 60;
  options.selection.permutation_repeats = 2;
  options.bo.initial_samples = 10;
  options.bo.hyperfit_every = 10;
  return options;
}

bool has_rung(const std::vector<core::DegradeEvent>& events,
              const std::string& rung) {
  for (const auto& e : events) {
    if (e.rung == rung) return true;
  }
  return false;
}

std::string serialize(core::SessionCheckpoint state) {
  core::canonicalize_journal(state);
  std::stringstream out;
  core::save_session(state, out);
  return out.str();
}

void expect_results_equal(const tuners::TuningResult& a,
                          const tuners::TuningResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].unit, b.history[i].unit) << "evaluation " << i;
    EXPECT_EQ(a.history[i].value_s, b.history[i].value_s) << i;
    EXPECT_EQ(a.history[i].cost_s, b.history[i].cost_s) << i;
    EXPECT_EQ(a.history[i].status, b.history[i].status) << i;
  }
  EXPECT_EQ(a.best_index, b.best_index);
  EXPECT_DOUBLE_EQ(a.search_cost_s, b.search_cost_s);
}

class GpScaleTest : public ::testing::Test {
 protected:
  void TearDown() override { chaos::injector().disarm(); }
};

// ------------------------------------------ remove_point correctness ----

// Removing any training point via the rank-1 path must agree with a
// fresh fixed-hyperparameter fit on the remaining data — at every index,
// not just the LIFO one the constant-liar purge exercises.
TEST_F(GpScaleTest, RemovePointMatchesRefitAtEveryIndex) {
  const std::size_t n = 16, dims = 3;
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  make_data(n, dims, 17, xs, ys);
  const auto probes = make_probes(5, dims, 99);

  gp::GaussianProcess full(gp::ard_kernel(dims), fixed_hypers(), 7);
  full.fit(xs, ys);

  for (std::size_t index = 0; index < n; ++index) {
    gp::GaussianProcess removed = full;
    removed.remove_point(index);
    ASSERT_EQ(removed.num_points(), n - 1);

    auto xs_minus = xs;
    auto ys_minus = ys;
    xs_minus.erase(xs_minus.begin() + static_cast<std::ptrdiff_t>(index));
    ys_minus.erase(ys_minus.begin() + static_cast<std::ptrdiff_t>(index));
    gp::GaussianProcess refit(gp::ard_kernel(dims), fixed_hypers(), 7);
    refit.fit(xs_minus, ys_minus);

    for (const auto& p : probes) {
      const auto a = removed.predict(p);
      const auto b = refit.predict(p);
      EXPECT_NEAR(a.mean, b.mean, 1e-8) << "index " << index;
      EXPECT_NEAR(a.variance, b.variance, 1e-8) << "index " << index;
    }
  }
}

// add_point followed by remove_point of that same (last) point is a pure
// truncation: the factor, targets, and predictions are restored
// *bit-identically* — this is what makes the constant-liar purge
// worker-count-invariant.
TEST_F(GpScaleTest, LifoRoundTripIsBitIdentical) {
  const std::size_t n = 14, dims = 3;
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  make_data(n, dims, 23, xs, ys);
  const auto probes = make_probes(6, dims, 101);

  gp::GaussianProcess model(gp::ard_kernel(dims), fixed_hypers(), 7);
  model.fit(xs, ys);

  std::vector<gp::Prediction> before;
  for (const auto& p : probes) before.push_back(model.predict(p));

  // Several stacked fantasies, purged LIFO — the q > 1 engine pattern.
  const auto extra = make_probes(3, dims, 55);
  for (const auto& x : extra) model.add_point(x, -0.25);
  for (std::size_t k = 0; k < extra.size(); ++k) {
    model.remove_point(model.num_points() - 1);
  }
  ASSERT_EQ(model.num_points(), n);

  for (std::size_t i = 0; i < probes.size(); ++i) {
    const auto after = model.predict(probes[i]);
    EXPECT_EQ(before[i].mean, after.mean) << "probe " << i;
    EXPECT_EQ(before[i].variance, after.variance) << "probe " << i;
  }
}

// ----------------------------------------------------- RFF tier ---------

TEST_F(GpScaleTest, RffGradientsMatchCentralDifferences) {
  const std::size_t n = 25, dims = 3;
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  make_data(n, dims, 31, xs, ys);

  gp::MaternHyperparams hypers;
  hypers.length_scales = {0.4, 0.6, 0.5};
  hypers.signal_variance = 1.2;
  hypers.noise_variance = 1e-3;
  gp::RffGp model(gp::RffOptions{128, 0x5eedULL});
  model.fit(xs, ys, hypers);

  gp::GpWorkspace ws;
  gp::PredictGradient out;
  const double h = 1e-5;
  for (const auto& probe : make_probes(4, dims, 77)) {
    model.predict_with_gradient(probe, ws, out);
    const auto base = model.predict(probe);
    EXPECT_EQ(out.mean, base.mean);
    EXPECT_EQ(out.variance, base.variance);
    for (std::size_t d = 0; d < dims; ++d) {
      auto hi = probe, lo = probe;
      hi[d] += h;
      lo[d] -= h;
      const auto up = model.predict(hi);
      const auto dn = model.predict(lo);
      const double dmean = (up.mean - dn.mean) / (2 * h);
      const double dvar = (up.variance - dn.variance) / (2 * h);
      EXPECT_NEAR(out.dmean[d], dmean,
                  1e-4 * std::max(1.0, std::abs(dmean)));
      EXPECT_NEAR(out.dvariance[d], dvar,
                  1e-4 * std::max(1.0, std::abs(dvar)));
    }
  }
}

// The random-features posterior mean tracks the exact GP it mirrors: the
// Monte-Carlo feature error is O(1/√m), far below this tolerance at
// m = 1024 on a smooth target.
TEST_F(GpScaleTest, RffApproximatesTheExactPosterior) {
  const std::size_t n = 40, dims = 2;
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  make_data(n, dims, 47, xs, ys);

  gp::GaussianProcess exact(gp::ard_kernel(dims, 0.5, 1.0, 1e-4),
                            fixed_hypers(), 7);
  exact.fit(xs, ys);

  gp::MaternHyperparams hypers;
  hypers.length_scales = {0.5, 0.5};
  hypers.signal_variance = 1.0;
  hypers.noise_variance = 1e-4;
  gp::RffGp rff(gp::RffOptions{1024, 0x5eedULL});
  rff.fit(xs, ys, hypers);
  EXPECT_EQ(rff.num_points(), n);
  EXPECT_STREQ(rff.tier(), "rff");
  EXPECT_DOUBLE_EQ(rff.best_observed(), exact.best_observed());

  for (const auto& p : make_probes(20, dims, 88)) {
    const auto a = exact.predict(p);
    const auto b = rff.predict(p);
    EXPECT_NEAR(a.mean, b.mean, 0.2);
    EXPECT_GE(b.variance, 0.0);
  }
}

// Incremental add/remove on the RFF tier agree with a from-scratch fit
// on the same data (rank-1 update/downdate of the m×m feature factor).
TEST_F(GpScaleTest, RffAddRemoveMatchesRefit) {
  const std::size_t n = 30, dims = 3;
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  make_data(n, dims, 53, xs, ys);

  gp::MaternHyperparams hypers;
  hypers.length_scales = {0.5, 0.5, 0.5};
  hypers.signal_variance = 1.0;
  hypers.noise_variance = 1e-3;

  const std::size_t held_out = 4;
  std::vector<std::vector<double>> xs_head(xs.begin(),
                                           xs.end() - held_out);
  std::vector<double> ys_head(ys.begin(), ys.end() - held_out);

  gp::RffGp incremental(gp::RffOptions{96, 0x5eedULL});
  incremental.fit(xs_head, ys_head, hypers);
  for (std::size_t i = n - held_out; i < n; ++i) {
    incremental.add_point(xs[i], ys[i]);
  }
  gp::RffGp batch(gp::RffOptions{96, 0x5eedULL});
  batch.fit(xs, ys, hypers);

  const auto probes = make_probes(6, dims, 111);
  for (const auto& p : probes) {
    const auto a = incremental.predict(p);
    const auto b = batch.predict(p);
    EXPECT_NEAR(a.mean, b.mean, 1e-7);
    EXPECT_NEAR(a.variance, b.variance, 1e-7);
  }

  // And removing them again recovers the head-only posterior.
  for (std::size_t k = 0; k < held_out; ++k) {
    incremental.remove_point(incremental.num_points() - 1);
  }
  gp::RffGp head(gp::RffOptions{96, 0x5eedULL});
  head.fit(xs_head, ys_head, hypers);
  for (const auto& p : probes) {
    const auto a = incremental.predict(p);
    const auto b = head.predict(p);
    EXPECT_NEAR(a.mean, b.mean, 1e-7);
    EXPECT_NEAR(a.variance, b.variance, 1e-7);
  }
}

// ------------------------------------ workspace reuse across tiers ------

// One GpWorkspace must serve models of different sizes and tiers back to
// back — buffers are sized at every use, so a reused workspace is
// bit-identical to a fresh one (the stale-workspace contract).
TEST_F(GpScaleTest, WorkspaceSurvivesTierAndSizeChanges) {
  const std::size_t dims = 3;
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  make_data(20, dims, 61, xs, ys);
  const std::vector<double> probe = {0.3, 0.7, 0.4};

  gp::GaussianProcess exact(gp::ard_kernel(dims), fixed_hypers(), 7);
  exact.fit(xs, ys);
  gp::MaternHyperparams hypers;
  hypers.length_scales = {0.5, 0.5, 0.5};
  gp::RffGp rff(gp::RffOptions{64, 0x5eedULL});
  rff.fit(xs, ys, hypers);

  gp::GpWorkspace reused;
  const auto e1 = exact.predict(probe, reused);   // n = 20 exact
  const auto r1 = rff.predict(probe, reused);     // m = 64 features
  exact.remove_point(5);
  const auto e2 = exact.predict(probe, reused);   // n = 19 exact

  gp::GpWorkspace w1, w2, w3;
  gp::GaussianProcess exact_fresh(gp::ard_kernel(dims), fixed_hypers(), 7);
  exact_fresh.fit(xs, ys);
  const auto f1 = exact_fresh.predict(probe, w1);
  const auto f2 = rff.predict(probe, w2);
  exact_fresh.remove_point(5);
  const auto f3 = exact_fresh.predict(probe, w3);

  EXPECT_EQ(e1.mean, f1.mean);
  EXPECT_EQ(e1.variance, f1.variance);
  EXPECT_EQ(r1.mean, f2.mean);
  EXPECT_EQ(r1.variance, f2.variance);
  EXPECT_EQ(e2.mean, f3.mean);
  EXPECT_EQ(e2.variance, f3.variance);

  // Gradient scratch follows the same contract.
  gp::PredictGradient g_reused, g_fresh;
  rff.predict_with_gradient(probe, reused, g_reused);
  rff.predict_with_gradient(probe, w2, g_fresh);
  EXPECT_EQ(g_reused.dmean, g_fresh.dmean);
  EXPECT_EQ(g_reused.dvariance, g_fresh.dvariance);
}

// ------------------------------------------- geometric growth -----------

// Long add_point streaks must reallocate the factor O(log n) times, not
// O(n): the allocation counter is the regression guard.
TEST_F(GpScaleTest, AddPointReservesGeometrically) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with ROBOTUNE_OBS=OFF";
  obs::metrics().reset();

  const std::size_t dims = 3, adds = 200;
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  make_data(4, dims, 71, xs, ys);
  gp::GaussianProcess model(gp::ard_kernel(dims), fixed_hypers(), 7);
  model.fit(xs, ys);

  std::vector<std::vector<double>> stream;
  std::vector<double> targets;
  make_data(adds, dims, 73, stream, targets);
  for (std::size_t i = 0; i < adds; ++i) {
    model.add_point(stream[i], targets[i]);
  }
  ASSERT_EQ(model.num_points(), 4 + adds);

  const auto snapshot = obs::metrics().snapshot();
  EXPECT_EQ(snapshot.counters.at("gp.add_point.calls"), adds);
  const auto it = snapshot.counters.find("gp.add_point.reserve");
  ASSERT_NE(it, snapshot.counters.end());
  // 4 → 204 points with doubling capacity: ~⌈log2(204/4)⌉ = 6 reserves.
  EXPECT_LE(it->second, 10u);
  EXPECT_GE(it->second, 1u);
}

// --------------------------------------- constant-liar purge ------------

// At q = 8 the purge must run on the rank-1 path: downdates counted,
// zero full refits.
TEST_F(GpScaleTest, BatchPurgeUsesDowndatesNotRefits) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with ROBOTUNE_OBS=OFF";
  obs::metrics().reset();

  auto objective = make_objective();
  auto options = fast_robotune();
  options.bo.batch_size = 8;
  core::RoboTune tuner(options);
  const auto report = tuner.tune_report(objective, 42, 5);
  EXPECT_EQ(report.tuning.history.size(), 42u);

  const auto snapshot = obs::metrics().snapshot();
  EXPECT_GT(snapshot.counters.at("bo.cl_purge.downdates"), 0u);
  EXPECT_GT(snapshot.counters.at("gp.remove_point.calls"), 0u);
  const auto refits = snapshot.counters.find("bo.cl_purge.refits");
  EXPECT_TRUE(refits == snapshot.counters.end() || refits->second == 0u)
      << "purge fell back to O(n³) refits";
}

// Batched sessions remain byte-identical for any worker count now that
// the purge downdates fantasies instead of refitting.
TEST_F(GpScaleTest, BatchedSessionsAreByteIdenticalAcrossWorkers) {
  const auto run_at = [&](int workers) {
    exec::SchedulerOptions sched;
    sched.parallelism = workers;
    exec::EvalScheduler scheduler(sched);
    auto objective = make_objective();
    auto options = fast_robotune();
    options.bo.batch_size = 4;
    core::RoboTune tuner(options);
    core::SessionLog session;
    auto report =
        tuner.tune_report(objective, 30, 5, nullptr, &session, &scheduler);
    return std::make_pair(std::move(report), serialize(session.state));
  };

  const auto [report1, journal1] = run_at(1);
  const auto [report4, journal4] = run_at(4);
  expect_results_equal(report1.tuning, report4.tuning);
  EXPECT_EQ(report1.tuning.best_unit(), report4.tuning.best_unit());
  EXPECT_EQ(journal1, journal4);
}

// The same invariance across the sparse switchover: the session crosses
// sparse_threshold mid-run, so proposals come from the RFF tier — still
// a pure function of the trajectory, never of scheduling.
TEST_F(GpScaleTest, SparseTierSessionsAreByteIdenticalAcrossWorkers) {
  const auto run_at = [&](int workers) {
    exec::SchedulerOptions sched;
    sched.parallelism = workers;
    exec::EvalScheduler scheduler(sched);
    auto objective = make_objective();
    auto options = fast_robotune();
    options.bo.sparse_threshold = 16;
    options.bo.rff_features = 64;
    core::RoboTune tuner(options);
    core::SessionLog session;
    auto report =
        tuner.tune_report(objective, 30, 5, nullptr, &session, &scheduler);
    return std::make_pair(std::move(report), serialize(session.state));
  };

  if (obs::kCompiledIn) obs::metrics().reset();
  const auto [report1, journal1] = run_at(1);
  const auto [report4, journal4] = run_at(4);
  expect_results_equal(report1.tuning, report4.tuning);
  EXPECT_EQ(journal1, journal4);
  if (obs::kCompiledIn) {
    // The sparse tier really carried part of the session.
    const auto snapshot = obs::metrics().snapshot();
    EXPECT_GT(snapshot.counters.at("bo.surrogate.rff_fits"), 0u);
  }
}

// ------------------------------------------------ chaos rungs -----------

// remove_point's only failure (a chaos-injected downdate loss) fires
// before any mutation: the model must be bitwise unchanged and usable.
TEST_F(GpScaleTest, RemovePointStrongGuaranteeUnderChaos) {
  if (!chaos::kCompiledIn) GTEST_SKIP() << "built with ROBOTUNE_CHAOS=OFF";
  const std::size_t dims = 3;
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  make_data(12, dims, 83, xs, ys);
  const std::vector<double> probe = {0.2, 0.5, 0.8};

  gp::GaussianProcess exact(gp::ard_kernel(dims), fixed_hypers(), 7);
  exact.fit(xs, ys);
  const auto exact_before = exact.predict(probe);

  gp::MaternHyperparams hypers;
  hypers.length_scales = {0.5, 0.5, 0.5};
  gp::RffGp rff(gp::RffOptions{64, 0x5eedULL});
  rff.fit(xs, ys, hypers);
  const auto rff_before = rff.predict(probe);

  chaos::ChaosProfile profile;
  profile.cholesky_failure = 1.0;
  chaos::injector().configure(profile, 3);
  EXPECT_THROW(exact.remove_point(exact.num_points() - 1), NumericalError);
  EXPECT_THROW(exact.remove_point(4), NumericalError);
  EXPECT_THROW(rff.remove_point(rff.num_points() - 1), NumericalError);
  chaos::injector().disarm();

  const auto exact_after = exact.predict(probe);
  EXPECT_EQ(exact_before.mean, exact_after.mean);
  EXPECT_EQ(exact_before.variance, exact_after.variance);
  const auto rff_after = rff.predict(probe);
  EXPECT_EQ(rff_before.mean, rff_after.mean);
  EXPECT_EQ(rff_before.variance, rff_after.variance);

  // Once the injected failure clears, the same removes succeed.
  EXPECT_NO_THROW(exact.remove_point(exact.num_points() - 1));
  EXPECT_NO_THROW(rff.remove_point(rff.num_points() - 1));
}

// A forced RFF tier under partial chaos lands the journaled
// `rff_fallback` rung and the session still completes its budget on the
// exact ladder.
TEST_F(GpScaleTest, ChaosExercisesRffFallbackRung) {
  if (!chaos::kCompiledIn) GTEST_SKIP() << "built with ROBOTUNE_CHAOS=OFF";
  chaos::ChaosProfile profile;
  ASSERT_TRUE(chaos::ChaosProfile::parse("cholesky=0.25", profile));
  chaos::injector().configure(profile, 5);

  auto objective = make_objective();
  auto options = fast_robotune();
  options.bo.surrogate = core::SurrogateTier::kRff;
  options.bo.rff_features = 64;
  // Refit every round: between refits the RFF tier absorbs points via
  // rank-1 updates with no factorization for the injector to hit.
  options.bo.hyperfit_every = 1;
  core::RoboTune tuner(options);
  core::SessionLog session;
  const auto report = tuner.tune_report(objective, 40, 5, nullptr, &session);

  EXPECT_EQ(report.tuning.history.size(), 40u);
  EXPECT_TRUE(has_rung(session.state.degrade_events, "rff_fallback"));
}

// A failed purge downdate lands the journaled `cl_purge` rung, counts a
// full refit, and the session still completes.
TEST_F(GpScaleTest, ChaosExercisesClPurgeRung) {
  if (!chaos::kCompiledIn) GTEST_SKIP() << "built with ROBOTUNE_CHAOS=OFF";
  if (obs::kCompiledIn) obs::metrics().reset();
  chaos::ChaosProfile profile;
  ASSERT_TRUE(chaos::ChaosProfile::parse("cholesky=0.25", profile));
  chaos::injector().configure(profile, 5);

  auto objective = make_objective();
  auto options = fast_robotune();
  options.bo.batch_size = 4;
  core::RoboTune tuner(options);
  core::SessionLog session;
  const auto report = tuner.tune_report(objective, 50, 5, nullptr, &session);

  EXPECT_EQ(report.tuning.history.size(), 50u);
  EXPECT_TRUE(has_rung(session.state.degrade_events, "cl_purge"));
  if (obs::kCompiledIn) {
    const auto snapshot = obs::metrics().snapshot();
    EXPECT_GE(snapshot.counters.at("bo.cl_purge.refits"), 1u);
  }
}

}  // namespace
}  // namespace robotune
