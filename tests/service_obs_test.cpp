// Fleet observability suite (DESIGN.md §14): the structured event
// journal's crash-safety and rotation, the byte-identity contract of
// its logical projection, the `metrics` verb over both transports, the
// Prometheus writer, the quantile estimator, and the O(1) status-count
// regression guard.
//
// Everything here runs under both ROBOTUNE_OBS=ON and OFF: the event
// journal is not obs-gated (it is a durability artifact), while
// counter/histogram assertions gate on obs::kCompiledIn.  The logical
// projection goldens are identical across both builds and across any
// max_live/slots/worker configuration — that *is* the contract.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "service/client.h"
#include "service/events.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/session_manager.h"
#include "service/telemetry.h"

namespace robotune {
namespace {

namespace fs = std::filesystem;

core::SessionSpec small_spec(std::uint64_t seed, int budget = 8) {
  core::SessionSpec spec;
  spec.workload = "PR";
  spec.dataset = 1;
  spec.tuner = "robotune";
  spec.budget = budget;
  spec.seed = seed;
  spec.parallel = 1;
  spec.init = 4;
  spec.selection_samples = 20;
  return spec;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    root_ = fs::temp_directory_path() /
            ("robotune-svcobs-" + tag + "-" + std::to_string(::getpid()));
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }
  std::string path() const { return root_.string(); }
  std::string file(const std::string& name) const {
    return (root_ / name).string();
  }

 private:
  fs::path root_;
};

using service::EventJournal;
using service::FleetEvent;

EventJournal::Options journal_options(const std::string& path,
                                      std::size_t max_bytes = 256 * 1024,
                                      std::size_t keep = 3) {
  EventJournal::Options options;
  options.path = path;
  options.max_bytes = max_bytes;
  options.keep = keep;
  return options;
}

// ---- event journal: framing, recovery, rotation --------------------------

TEST(EventJournal, RoundTripsEventsWithMonotonicSequence) {
  TempDir dir("roundtrip");
  const std::string path = dir.file("events.jsonl");
  {
    EventJournal journal;
    ASSERT_TRUE(journal.open(journal_options(path)));
    EXPECT_TRUE(journal.enabled());
    journal.emit(0, "daemon.start");
    journal.emit(3, "admission.accept", "readmission");
    journal.emit(3, "queue.enter");
    journal.emit(0, "admission.reject", "weird spec: a=b c%\" \\ \n d");
    EXPECT_EQ(journal.last_seq(), 4u);
  }
  std::vector<FleetEvent> events;
  EventJournal::LoadReport report;
  ASSERT_TRUE(EventJournal::load_file(path, events, core::LoadMode::kStrict,
                                      &report));
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_FALSE(report.recovered);
  EXPECT_TRUE(report.header_ok);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i + 1);
  }
  EXPECT_EQ(events[1].session, 3u);
  EXPECT_EQ(events[1].kind, "admission.accept");
  EXPECT_EQ(events[1].detail, "readmission");
  // Escaping survives arbitrary detail strings.
  EXPECT_EQ(events[3].detail, "weird spec: a=b c%\" \\ \n d");
}

TEST(EventJournal, DisabledJournalNoOps) {
  EventJournal journal;  // never opened
  EXPECT_FALSE(journal.enabled());
  journal.emit(1, "admission.accept");
  journal.flush();
  EXPECT_EQ(journal.last_seq(), 0u);
  EXPECT_TRUE(journal.chain().empty());
}

TEST(EventJournal, RecoverTruncatesAtEveryCutPoint) {
  TempDir dir("truncate");
  const std::string path = dir.file("events.jsonl");
  {
    EventJournal journal;
    ASSERT_TRUE(journal.open(journal_options(path)));
    for (int i = 1; i <= 6; ++i) {
      journal.emit(static_cast<std::uint64_t>(i), "queue.enter",
                   "detail-" + std::to_string(i));
    }
  }
  const std::string bytes = slurp(path);
  ASSERT_GT(bytes.size(), 30u);
  std::vector<FleetEvent> full;
  ASSERT_TRUE(
      EventJournal::load_file(path, full, core::LoadMode::kStrict, nullptr));
  ASSERT_EQ(full.size(), 6u);

  // Every possible kill -9 cut: the recovered events are exactly a
  // prefix of the full stream, and a cut mid-record drops only that
  // record.
  std::size_t last_count = full.size();
  for (std::size_t cut = bytes.size(); cut-- > 0;) {
    const std::string cut_path = dir.file("cut.jsonl");
    spit(cut_path, bytes.substr(0, cut));
    std::vector<FleetEvent> events;
    EventJournal::LoadReport report;
    ASSERT_TRUE(EventJournal::load_file(cut_path, events,
                                        core::LoadMode::kRecover, &report))
        << "cut at byte " << cut;
    ASSERT_LE(events.size(), full.size());
    // Monotone: shrinking the file never recovers *more* events.
    ASSERT_LE(events.size(), last_count) << "cut at byte " << cut;
    last_count = events.size();
    for (std::size_t i = 0; i < events.size(); ++i) {
      ASSERT_EQ(events[i], full[i]) << "cut at byte " << cut;
    }
    // Strict mode refuses anything recover had to repair.
    if (report.recovered || !report.header_ok) {
      std::vector<FleetEvent> ignored;
      ASSERT_THROW(EventJournal::load_file(cut_path, ignored,
                                           core::LoadMode::kStrict, nullptr),
                   InvalidArgument)
          << "cut at byte " << cut;
    }
  }
}

TEST(EventJournal, RecoverStopsAtBitFlip) {
  TempDir dir("bitflip");
  const std::string path = dir.file("events.jsonl");
  {
    EventJournal journal;
    ASSERT_TRUE(journal.open(journal_options(path)));
    for (int i = 1; i <= 5; ++i) {
      journal.emit(static_cast<std::uint64_t>(i), "session.running");
    }
  }
  std::string bytes = slurp(path);
  // Flip a payload byte in the middle of the file: CRC must catch it.
  bytes[bytes.size() / 2] ^= 0x40;
  spit(path, bytes);
  std::vector<FleetEvent> events;
  EventJournal::LoadReport report;
  ASSERT_TRUE(EventJournal::load_file(path, events, core::LoadMode::kRecover,
                                      &report));
  EXPECT_TRUE(report.recovered);
  EXPECT_GT(report.dropped, 0u);
  EXPECT_LT(events.size(), 5u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i + 1);
  }
  std::vector<FleetEvent> ignored;
  EXPECT_THROW(EventJournal::load_file(path, ignored, core::LoadMode::kStrict,
                                       nullptr),
               InvalidArgument);
}

TEST(EventJournal, ReopenTruncatesTornTailAndContinuesSequence) {
  TempDir dir("reopen");
  const std::string path = dir.file("events.jsonl");
  {
    EventJournal journal;
    ASSERT_TRUE(journal.open(journal_options(path)));
    journal.emit(1, "queue.enter");
    journal.emit(1, "queue.leave");
    journal.emit(1, "session.running");
  }
  // Tear the last record (kill -9 mid-write).
  const std::string bytes = slurp(path);
  spit(path, bytes.substr(0, bytes.size() - 7));
  {
    EventJournal journal;
    ASSERT_TRUE(journal.open(journal_options(path)));
    // The torn record is gone; the sequence continues after the last
    // durable one.
    EXPECT_EQ(journal.last_seq(), 2u);
    journal.emit(1, "session.done");
  }
  std::vector<FleetEvent> events;
  ASSERT_TRUE(EventJournal::load_file(path, events, core::LoadMode::kStrict,
                                      nullptr));
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[2].seq, 3u);
  EXPECT_EQ(events[2].kind, "session.done");
}

TEST(EventJournal, CorruptHeaderIsSetAsideNotOverwritten) {
  TempDir dir("header");
  const std::string path = dir.file("events.jsonl");
  spit(path, "not an event journal at all\ngarbage\n");
  EventJournal journal;
  ASSERT_TRUE(journal.open(journal_options(path)));
  EXPECT_EQ(journal.last_seq(), 0u);
  journal.emit(1, "queue.enter");
  journal.close();
  // The unrecognizable history was preserved, not clobbered.
  EXPECT_TRUE(fs::exists(path + ".corrupt"));
  EXPECT_EQ(slurp(path + ".corrupt"),
            "not an event journal at all\ngarbage\n");
  std::vector<FleetEvent> events;
  ASSERT_TRUE(EventJournal::load_file(path, events, core::LoadMode::kStrict,
                                      nullptr));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].seq, 1u);
}

TEST(EventJournal, RotationKeepsSequenceMonotonicAcrossChain) {
  TempDir dir("rotate");
  const std::string path = dir.file("events.jsonl");
  {
    EventJournal journal;
    // Tiny threshold: every few records force a rotation.
    ASSERT_TRUE(journal.open(journal_options(path, /*max_bytes=*/256,
                                             /*keep=*/2)));
    for (int i = 1; i <= 40; ++i) {
      journal.emit(static_cast<std::uint64_t>(i % 5), "queue.enter",
                   "record-" + std::to_string(i));
    }
    EXPECT_EQ(journal.last_seq(), 40u);
    const auto chain = journal.chain();
    ASSERT_GE(chain.size(), 2u);  // rotations happened
    ASSERT_LE(chain.size(), 3u);  // keep=2 bounds the chain
    EXPECT_EQ(chain.back(), path);
  }
  std::vector<FleetEvent> events;
  EventJournal::LoadReport report;
  ASSERT_TRUE(EventJournal::load_chain(
      journal_options(path, 256, 2), events, &report));
  ASSERT_FALSE(events.empty());
  // keep=2 dropped the oldest rotations, so the chain holds a strict
  // *suffix* of the sequence, still strictly monotonic.
  for (std::size_t i = 1; i < events.size(); ++i) {
    ASSERT_GT(events[i].seq, events[i - 1].seq);
  }
  EXPECT_EQ(events.back().seq, 40u);
  EXPECT_LT(events.size(), 40u);  // the oldest file really was dropped

  // Reopening after rotation continues from the *active* file's tail.
  EventJournal journal;
  ASSERT_TRUE(journal.open(journal_options(path, 256, 2)));
  EXPECT_EQ(journal.last_seq(), 40u);
  journal.emit(1, "queue.leave");
  EXPECT_EQ(journal.last_seq(), 41u);
}

TEST(EventJournal, ReopenAfterRotationWithEmptyActiveFileScansChain) {
  TempDir dir("rotate-empty");
  const std::string path = dir.file("events.jsonl");
  {
    EventJournal journal;
    ASSERT_TRUE(journal.open(journal_options(path, /*max_bytes=*/128,
                                             /*keep=*/2)));
    for (int i = 1; i <= 10; ++i) journal.emit(1, "queue.enter");
  }
  // Simulate a crash right after rotation: active file is header-only.
  spit(path, slurp(path).substr(0, slurp(path).find('\n') + 1));
  EventJournal journal;
  ASSERT_TRUE(journal.open(journal_options(path, 128, 2)));
  // The sequence must continue after the rotated files' last record,
  // never restart at 1.
  journal.emit(1, "queue.leave");
  std::vector<FleetEvent> events;
  ASSERT_TRUE(EventJournal::load_file(path, events, core::LoadMode::kStrict,
                                      nullptr));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_GT(events[0].seq, 1u);
}

// ---- logical projection: the byte-identity contract ----------------------

TEST(EventProjection, ClassifiesKinds) {
  EXPECT_TRUE(service::logical_event_kind("admission.accept"));
  EXPECT_TRUE(service::logical_event_kind("session.done"));
  EXPECT_TRUE(service::logical_event_kind("recovery.quarantined"));
  EXPECT_FALSE(service::logical_event_kind("admission.reject"));
  EXPECT_FALSE(service::logical_event_kind("client.connect"));
  EXPECT_FALSE(service::logical_event_kind("daemon.start"));
  EXPECT_FALSE(service::logical_event_kind("made.up"));
}

std::string fleet_projection(std::size_t max_live, std::size_t slots,
                             const std::string& tag) {
  TempDir dir("proj-" + tag);
  service::ServiceOptions options;
  options.root = dir.path();
  options.max_live = max_live;
  options.slots = slots;
  options.seed = 99;
  options.events_path = dir.file("events.jsonl");
  std::string projection;
  {
    service::SessionManager manager(options);
    EXPECT_TRUE(manager.events_error().empty()) << manager.events_error();
    for (int i = 0; i < 3; ++i) {
      const auto result =
          manager.start(small_spec(/*seed=*/0, /*budget=*/6),
                        /*derive_seed=*/true);
      EXPECT_TRUE(result.admitted) << result.error;
    }
    manager.drain();
    std::vector<FleetEvent> events;
    EXPECT_TRUE(EventJournal::load_chain(journal_options(options.events_path),
                                         events, nullptr));
    projection = service::logical_event_projection(events);
  }
  return projection;
}

TEST(EventProjection, ByteIdenticalAcrossFleetConfigurations) {
  // The golden is config-independent AND obs-build-independent: the CI
  // OBS=OFF run asserts the very same bytes.
  const std::string golden =
      "session 1 admission.accept\n"
      "session 1 queue.enter\n"
      "session 1 queue.leave\n"
      "session 1 session.running\n"
      "session 1 session.done\n"
      "session 2 admission.accept\n"
      "session 2 queue.enter\n"
      "session 2 queue.leave\n"
      "session 2 session.running\n"
      "session 2 session.done\n"
      "session 3 admission.accept\n"
      "session 3 queue.enter\n"
      "session 3 queue.leave\n"
      "session 3 session.running\n"
      "session 3 session.done\n";
  EXPECT_EQ(fleet_projection(1, 1, "serial"), golden);
  EXPECT_EQ(fleet_projection(4, 2, "wide"), golden);
  EXPECT_EQ(fleet_projection(4, 0, "free"), golden);
}

TEST(EventProjection, RecoveredFleetKeepsLogicalStream) {
  TempDir dir("proj-recover");
  service::ServiceOptions options;
  options.root = dir.path();
  options.max_live = 2;
  options.seed = 7;
  options.events_path = dir.file("events.jsonl");
  {
    service::SessionManager manager(options);
    const auto a = manager.start(small_spec(0, 6), /*derive_seed=*/true);
    const auto b = manager.start(small_spec(0, 6), /*derive_seed=*/true);
    ASSERT_TRUE(a.admitted);
    ASSERT_TRUE(b.admitted);
    manager.drain();
  }
  // Restart over the same root: both sessions are complete on disk.
  {
    service::SessionManager manager(options);
    const auto recovery = manager.recover_fleet();
    EXPECT_EQ(recovery.completed, 2u);
    EXPECT_EQ(recovery.quarantined, 0u);
    manager.drain();
  }
  std::vector<FleetEvent> events;
  ASSERT_TRUE(EventJournal::load_chain(journal_options(options.events_path),
                                       events, nullptr));
  const std::string projection = service::logical_event_projection(events);
  EXPECT_EQ(projection,
            "session 1 admission.accept\n"
            "session 1 queue.enter\n"
            "session 1 queue.leave\n"
            "session 1 session.running\n"
            "session 1 session.done\n"
            "session 1 recovery.completed\n"
            "session 2 admission.accept\n"
            "session 2 queue.enter\n"
            "session 2 queue.leave\n"
            "session 2 session.running\n"
            "session 2 session.done\n"
            "session 2 recovery.completed\n");
  // The journal survived the restart as ONE monotonic stream.
  for (std::size_t i = 1; i < events.size(); ++i) {
    ASSERT_GT(events[i].seq, events[i - 1].seq);
  }
}

// ---- O(1) service_status (ROADMAP 5) -------------------------------------

void expect_counts_match(service::SessionManager& manager) {
  const auto fast = manager.service_status();
  const auto slow = manager.recount_status();
  EXPECT_EQ(fast.queued, slow.queued);
  EXPECT_EQ(fast.running, slow.running);
  EXPECT_EQ(fast.done, slow.done);
  EXPECT_EQ(fast.cancelled, slow.cancelled);
  EXPECT_EQ(fast.failed, slow.failed);
}

TEST(ServiceStatus, IncrementalCountsNeverDriftFromScan) {
  TempDir dir("counts");
  service::ServiceOptions options;
  options.root = dir.path();
  options.max_live = 2;
  // Room for all four admissions even if no worker has dequeued yet —
  // admission timing must not make this test flaky.
  options.max_pending = 4;
  options.events_path = dir.file("events.jsonl");
  service::SessionManager manager(options);
  expect_counts_match(manager);

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    const auto result =
        manager.start(small_spec(100 + i, /*budget=*/6));
    ASSERT_TRUE(result.admitted) << result.error;
    ids.push_back(result.id);
    expect_counts_match(manager);
  }
  // One cancel mid-flight exercises the cancelled transition.
  manager.cancel(ids[3]);
  expect_counts_match(manager);
  manager.drain();
  expect_counts_match(manager);
  const auto status = manager.service_status();
  EXPECT_EQ(status.queued, 0u);
  EXPECT_EQ(status.running, 0u);
  EXPECT_EQ(status.done + status.cancelled, 4u);
  EXPECT_EQ(status.failed, 0u);
}

TEST(ServiceStatus, RecoveredFleetCountsMatchScan) {
  TempDir dir("counts-recover");
  service::ServiceOptions options;
  options.root = dir.path();
  options.max_live = 2;
  {
    service::SessionManager manager(options);
    ASSERT_TRUE(manager.start(small_spec(11, 6)).admitted);
    ASSERT_TRUE(manager.start(small_spec(12, 6)).admitted);
    manager.drain();
  }
  service::SessionManager manager(options);
  const auto recovery = manager.recover_fleet();
  EXPECT_EQ(recovery.completed, 2u);
  expect_counts_match(manager);
  const auto status = manager.service_status();
  EXPECT_EQ(status.done, 2u);
}

// ---- metrics verb --------------------------------------------------------

TEST(MetricsVerb, AnswersOverLocalClient) {
  // The registry is process-global; reset so this test's counter
  // assertions are exact regardless of which tests ran before it.
  obs::metrics().reset();
  TempDir dir("verb-local");
  service::ServiceOptions options;
  options.root = dir.path();
  options.max_live = 2;
  options.events_path = dir.file("events.jsonl");
  service::SessionManager manager(options);
  service::LocalClient client(manager);

  service::Request start;
  start.verb = "start";
  start.spec_body = core::encode_spec_body(small_spec(21, 6));
  const auto started = client.call(start);
  ASSERT_TRUE(started.ok) << started.error;
  manager.drain();

  // A suggest feeds the per-session latency histogram.
  service::Request suggest;
  suggest.verb = "suggest";
  suggest.session = 1;
  ASSERT_TRUE(client.call(suggest).ok);

  service::Request metrics;
  metrics.verb = "metrics";
  metrics.format = "prom";
  const auto response = client.call(metrics);
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.fields.at("done"), "1");
  EXPECT_EQ(response.fields.at("queued"), "0");
  EXPECT_EQ(response.fields.at("running"), "0");
  EXPECT_EQ(response.fields.at("accepting"), "1");
  ASSERT_EQ(response.records.size(), 1u);
  EXPECT_EQ(response.records[0].substr(0, 7), "1 done ");
  if (obs::kCompiledIn) {
    // start + suggest counted; the in-flight metrics call records its
    // own latency only after answering.
    EXPECT_GE(std::stoull(response.fields.at("rpc_requests")), 2u);
    const std::string& prom = response.fields.at("prom");
    EXPECT_NE(prom.find("robotune_service_rpc_start 1\n"),
              std::string::npos);
    EXPECT_NE(prom.find("robotune_service_admission_accepted 1\n"),
              std::string::npos);
    EXPECT_NE(prom.find("session=\"1\""), std::string::npos);
    EXPECT_NE(
        prom.find("robotune_runtime_service_rpc_suggest_latency_us_bucket"),
        std::string::npos);
  } else {
    EXPECT_EQ(response.fields.at("rpc_requests"), "0");
    // The exposition is empty but well-formed.
    EXPECT_EQ(response.fields.at("prom").find("# robotune"), 0u);
  }
  // events_seq reflects the fleet journal.
  EXPECT_GT(std::stoull(response.fields.at("events_seq")), 0u);

  // Per-session variant.
  service::Request per_session;
  per_session.verb = "metrics";
  per_session.session = 1;
  per_session.format = "prom";
  const auto session_response = client.call(per_session);
  ASSERT_TRUE(session_response.ok) << session_response.error;
  EXPECT_EQ(session_response.fields.at("state"), "done");
  EXPECT_EQ(session_response.fields.at("evals"), "6");
  if (obs::kCompiledIn) {
    // The session section is exported *unscoped* (names already
    // stripped of session/<id>/) — directly comparable to a standalone
    // run's logical section.
    const std::string& prom = session_response.fields.at("prom");
    EXPECT_NE(prom.find("robotune_bo_rounds"), std::string::npos);
    EXPECT_EQ(prom.find("session=\""), std::string::npos);
  }

  service::Request missing;
  missing.verb = "metrics";
  missing.session = 99;
  EXPECT_FALSE(client.call(missing).ok);
}

TEST(MetricsVerb, RoundTripsOverUnixSocket) {
  obs::metrics().reset();
  TempDir dir("verb-socket");
  service::ServiceOptions options;
  options.root = dir.path();
  options.max_live = 1;
  options.events_path = dir.file("events.jsonl");
  service::SessionManager manager(options);
  service::Server server(manager, dir.file("rt.sock"));
  std::string error;
  ASSERT_TRUE(server.listen(&error)) << error;
  std::atomic<bool> stop{false};
  std::thread serve_thread([&] { server.serve(stop); });

  service::SocketClient client;
  ASSERT_TRUE(client.connect(dir.file("rt.sock"), &error)) << error;

  service::Request start;
  start.verb = "start";
  start.spec_body = core::encode_spec_body(small_spec(31, 6));
  service::Response response;
  ASSERT_TRUE(client.call(start, response, &error)) << error;
  ASSERT_TRUE(response.ok) << response.error;
  manager.drain();

  service::Request metrics;
  metrics.verb = "metrics";
  metrics.format = "prom";
  ASSERT_TRUE(client.call(metrics, response, &error)) << error;
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.fields.at("done"), "1");
  ASSERT_EQ(response.records.size(), 1u);
  if (obs::kCompiledIn) {
    // The exposition survived the framed socket round-trip (escaping
    // covers its newlines) and saw the socket-side counters.
    const std::string& prom = response.fields.at("prom");
    EXPECT_NE(prom.find("robotune_service_rpc_start 1\n"),
              std::string::npos);
    EXPECT_NE(prom.find("robotune_service_clients_connected 1\n"),
              std::string::npos);
  }

  client.close();
  stop.store(true);
  serve_thread.join();

  // The transport events landed in the fleet journal.
  std::vector<FleetEvent> events;
  ASSERT_TRUE(EventJournal::load_chain(journal_options(options.events_path),
                                       events, nullptr));
  bool connect_seen = false;
  for (const auto& event : events) {
    if (event.kind == "client.connect") connect_seen = true;
  }
  EXPECT_TRUE(connect_seen);
}

// ---- quantile estimator --------------------------------------------------

TEST(HistogramQuantile, EstimatesWithinBuckets) {
  obs::HistogramData h;
  h.bounds = {1.0, 2.0, 4.0};
  h.counts = {0, 0, 0, 0};
  EXPECT_EQ(obs::histogram_quantile(h, 0.5), 0.0);  // empty

  // 10 observations in (1, 2]: every quantile interpolates inside it.
  h.counts = {0, 10, 0, 0};
  h.total = 10;
  EXPECT_GT(obs::histogram_quantile(h, 0.5), 1.0);
  EXPECT_LE(obs::histogram_quantile(h, 0.5), 2.0);
  EXPECT_LT(obs::histogram_quantile(h, 0.1),
            obs::histogram_quantile(h, 0.9));
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(h, 1.0), 2.0);

  // Mixed: 5 in the first bucket, 5 in the third.
  h.counts = {5, 0, 5, 0};
  h.total = 10;
  EXPECT_LE(obs::histogram_quantile(h, 0.5), 1.0);
  EXPECT_GT(obs::histogram_quantile(h, 0.9), 2.0);
  EXPECT_LE(obs::histogram_quantile(h, 0.9), 4.0);

  // Overflow ranks clamp to the largest finite bound.
  h.counts = {0, 0, 0, 10};
  h.total = 10;
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(h, 0.99), 4.0);
}

// ---- Prometheus writer ---------------------------------------------------

TEST(Prometheus, RendersCountersGaugesAndSessionLabels) {
  obs::MetricsSnapshot snapshot;
  snapshot.counters["eval.runs"] = 24;
  snapshot.counters["session/3/eval.runs"] = 7;
  snapshot.counters["session/11/eval.runs"] = 17;
  snapshot.gauges["runtime.service.queue.depth"] = 2.0;
  const std::string text = obs::render_prometheus(snapshot);
  // One family: a single TYPE line, fleet series plus labeled
  // per-session series.
  EXPECT_NE(text.find("# TYPE robotune_eval_runs counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("robotune_eval_runs 24\n"), std::string::npos);
  EXPECT_NE(text.find("robotune_eval_runs{session=\"3\"} 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("robotune_eval_runs{session=\"11\"} 17\n"),
            std::string::npos);
  EXPECT_EQ(text.find("session/"), std::string::npos);  // fully mapped
  EXPECT_NE(
      text.find("# TYPE robotune_runtime_service_queue_depth gauge\n"),
      std::string::npos);
  EXPECT_NE(text.find("robotune_runtime_service_queue_depth 2\n"),
            std::string::npos);
}

TEST(Prometheus, RendersCumulativeHistogramBuckets) {
  obs::MetricsSnapshot snapshot;
  obs::HistogramData h;
  h.bounds = {1.0, 5.0};
  h.counts = {2, 3, 1};  // 2 <=1, 3 <=5, 1 overflow
  h.total = 6;
  snapshot.histograms["runtime.rpc.latency_us"] = h;
  const std::string text = obs::render_prometheus(snapshot);
  EXPECT_NE(
      text.find("# TYPE robotune_runtime_rpc_latency_us histogram\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("robotune_runtime_rpc_latency_us_bucket{le=\"1\"} 2\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("robotune_runtime_rpc_latency_us_bucket{le=\"5\"} 5\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("robotune_runtime_rpc_latency_us_bucket{le=\"+Inf\"} 6\n"),
      std::string::npos);
  EXPECT_NE(text.find("robotune_runtime_rpc_latency_us_count 6\n"),
            std::string::npos);
  // No _sum by design: the registry keeps no floating-point sums.
  EXPECT_EQ(text.find("_sum"), std::string::npos);
}

TEST(Prometheus, WritesFileAtomically) {
  TempDir dir("promfile");
  obs::MetricsSnapshot snapshot;
  snapshot.counters["eval.runs"] = 1;
  const std::string path = dir.file("metrics.prom");
  ASSERT_TRUE(obs::write_prometheus_file(snapshot, path));
  const std::string text = slurp(path);
  EXPECT_NE(text.find("robotune_eval_runs 1\n"), std::string::npos);
  // No temp file left behind.
  std::size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
  EXPECT_FALSE(obs::write_prometheus_file(
      snapshot, dir.path() + "/no-such-dir/metrics.prom"));
}

// ---- fleet summary / verb plumbing ---------------------------------------

TEST(FleetSummary, RendersSectionsAndSessionRows) {
  obs::MetricsSnapshot snapshot;
  snapshot.counters["service.rpc.suggest"] = 5;
  service::ServiceStatus status;
  status.done = 2;
  std::vector<service::SessionStatus> sessions(2);
  sessions[0].id = 1;
  sessions[0].state = service::SessionState::kDone;
  sessions[0].evaluations = 6;
  sessions[0].best_value_s = 41.5;
  sessions[1].id = 2;
  sessions[1].state = service::SessionState::kQueued;
  sessions[1].best_value_s = std::numeric_limits<double>::infinity();
  const std::string text =
      service::render_fleet_summary(snapshot, status, sessions);
  EXPECT_NE(text.find("fleet observability summary"), std::string::npos);
  EXPECT_NE(text.find("-- rpc"), std::string::npos);
  EXPECT_NE(text.find("suggest"), std::string::npos);
  EXPECT_NE(text.find("41.50"), std::string::npos);
  // +inf incumbents render as "-", never "inf".
  EXPECT_EQ(text.find("inf"), std::string::npos);
}

TEST(Telemetry, UnknownVerbsCollapseIntoOneCounter) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "needs the live registry";
  service::record_rpc("garbage-verb-1", 0, false, 1.0);
  service::record_rpc("garbage-verb-2", 0, true, 1.0);
  const auto snapshot = obs::metrics().snapshot();
  EXPECT_GE(snapshot.counters.at("service.rpc.unknown"), 2u);
  EXPECT_GE(snapshot.counters.at("service.rpc.unknown.errors"), 1u);
  EXPECT_EQ(snapshot.counters.count("service.rpc.garbage-verb-1"), 0u);
}

TEST(Protocol, FormatFieldRoundTrips) {
  service::Request request;
  request.verb = "metrics";
  request.rid = 9;
  request.format = "prom";
  const std::string payload = service::encode_request(request);
  service::Request decoded;
  std::string error;
  ASSERT_TRUE(service::decode_request(payload, decoded, error)) << error;
  EXPECT_EQ(decoded.format, "prom");
  EXPECT_EQ(decoded.verb, "metrics");
}

}  // namespace
}  // namespace robotune
