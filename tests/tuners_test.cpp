// Tests for the tuner infrastructure and the three baseline tuners.
#include <gtest/gtest.h>

#include <limits>

#include "sparksim/objective.h"
#include "tuners/bestconfig.h"
#include "tuners/gunther.h"
#include "tuners/random_search.h"
#include "tuners/tuner.h"

namespace robotune::tuners {
namespace {

using sparksim::RunStatus;

sparksim::SparkObjective make_objective(std::uint64_t seed = 42,
                                        sparksim::WorkloadKind kind =
                                            sparksim::WorkloadKind::kTeraSort,
                                        int dataset = 1) {
  return sparksim::SparkObjective(sparksim::ClusterSpec{},
                                  sparksim::make_workload(kind, dataset),
                                  sparksim::spark24_config_space(), seed);
}

// -------------------------------------------------------- GuardPolicy ----

TEST(GuardPolicyTest, StaticThresholdOnly) {
  GuardPolicy guard(480.0, 0.0);
  EXPECT_DOUBLE_EQ(guard.current(), 480.0);
}

TEST(GuardPolicyTest, NoGuardMeansZero) {
  GuardPolicy guard(0.0, 0.0);
  EXPECT_DOUBLE_EQ(guard.current(), 0.0);
}

TEST(GuardPolicyTest, MedianMultipleActivatesAfterFiveSamples) {
  GuardPolicy guard(480.0, 2.0);
  Evaluation e;
  e.status = RunStatus::kOk;
  for (double v : {100.0, 110.0, 90.0, 105.0}) {
    e.value_s = v;
    guard.record(e);
  }
  EXPECT_DOUBLE_EQ(guard.current(), 480.0);  // only 4 samples yet
  e.value_s = 95.0;
  guard.record(e);
  EXPECT_DOUBLE_EQ(guard.current(), 200.0);  // 2 x median(…)=2x100
}

TEST(GuardPolicyTest, IgnoresFailedAndStoppedRuns) {
  GuardPolicy guard(480.0, 2.0);
  Evaluation bad;
  bad.status = RunStatus::kOom;
  bad.value_s = 600.0;
  for (int i = 0; i < 10; ++i) guard.record(bad);
  EXPECT_DOUBLE_EQ(guard.current(), 480.0);
}

TEST(GuardPolicyTest, StaticCapWinsWhenTighter) {
  GuardPolicy guard(150.0, 3.0);
  Evaluation e;
  e.status = RunStatus::kOk;
  for (double v : {100.0, 100.0, 100.0, 100.0, 100.0}) {
    e.value_s = v;
    guard.record(e);
  }
  EXPECT_DOUBLE_EQ(guard.current(), 150.0);  // min(150, 300)
}

TEST(GuardPolicyTest, ThresholdIsMinOfStaticCapAndMedianMultiple) {
  GuardPolicy guard(480.0, 2.0);
  Evaluation e;
  e.status = RunStatus::kOk;
  for (double v : {100.0, 100.0, 100.0, 100.0, 100.0}) {
    e.value_s = v;
    guard.record(e);
  }
  ASSERT_EQ(guard.observations(), 5u);
  EXPECT_DOUBLE_EQ(guard.current(), 200.0);  // min(480, 2 x 100)
  // A run of slow successes pushes the median-derived bound back above
  // the static cap, which takes over again.
  for (double v : {400.0, 400.0, 400.0, 400.0, 400.0, 400.0}) {
    e.value_s = v;
    guard.record(e);
  }
  EXPECT_DOUBLE_EQ(guard.current(), 480.0);  // min(480, 2 x 400)
}

TEST(GuardPolicyTest, EarlyStoppedAndFailedRunsNeverEnterTheMedian) {
  GuardPolicy guard(480.0, 2.0);
  Evaluation stopped;
  stopped.status = RunStatus::kTimeLimit;
  stopped.stopped_early = true;
  stopped.value_s = 480.0;
  Evaluation failed;
  failed.status = RunStatus::kOom;
  failed.value_s = 504.0;
  Evaluation transient;
  transient.status = RunStatus::kExecutorLost;
  transient.transient = true;
  transient.value_s = 480.0;
  for (int i = 0; i < 5; ++i) {
    guard.record(stopped);
    guard.record(failed);
    guard.record(transient);
  }
  EXPECT_EQ(guard.observations(), 0u);
  EXPECT_DOUBLE_EQ(guard.current(), 480.0);  // static cap only
  // Clean successes are the only observations that count.
  Evaluation ok;
  ok.status = RunStatus::kOk;
  ok.value_s = 50.0;
  for (int i = 0; i < 5; ++i) guard.record(ok);
  EXPECT_EQ(guard.observations(), 5u);
  EXPECT_DOUBLE_EQ(guard.current(), 100.0);
}

TEST(EvaluateIntoTest, ChargesExactlyTheThresholdOnEarlyStop) {
  auto objective = make_objective(30);
  GuardPolicy guard(30.0, 0.0);  // far below any real execution time
  TuningResult result;
  const auto e = evaluate_into(objective, objective.space().default_unit(),
                               guard, result);
  EXPECT_TRUE(e.stopped_early);
  EXPECT_EQ(e.status, RunStatus::kTimeLimit);
  EXPECT_DOUBLE_EQ(e.value_s, 30.0);
  EXPECT_DOUBLE_EQ(e.cost_s, 30.0);
  EXPECT_DOUBLE_EQ(result.search_cost_s, 30.0);
  EXPECT_EQ(guard.observations(), 0u);  // the stop never feeds the median
}

// ------------------------------------------------------- TuningResult ----

TEST(TuningResultTest, BestTrackingPrefersSuccessfulRuns) {
  auto objective = make_objective(1);
  GuardPolicy guard(480.0, 0.0);
  TuningResult result;
  // A failing config first (tiny memory per slot), then a good one.
  auto bad = objective.space().default_unit();
  bad[*objective.space().index_of("spark.executor.cores")] = 0.999;   // 32
  bad[*objective.space().index_of("spark.executor.memory.mb")] = 0.0;  // 8 GB
  bad[*objective.space().index_of("spark.memory.fraction")] = 0.0;
  auto good = objective.space().default_unit();
  good[*objective.space().index_of("spark.executor.cores")] =
      objective.space()
          .spec(*objective.space().index_of("spark.executor.cores"))
          .encode(8);
  good[*objective.space().index_of("spark.executor.memory.mb")] =
      objective.space()
          .spec(*objective.space().index_of("spark.executor.memory.mb"))
          .encode(32768);
  evaluate_into(objective, bad, guard, result);
  evaluate_into(objective, good, guard, result);
  EXPECT_TRUE(result.found_any());
  EXPECT_EQ(result.best_index, result.history[0].ok() ? 0u : 1u);
}

TEST(TuningResultTest, TrajectoryIsMonotoneNonIncreasing) {
  auto objective = make_objective(2);
  RandomSearch rs;
  const auto result = rs.tune(objective, 30, 7);
  const auto traj = result.best_trajectory();
  ASSERT_EQ(traj.size(), 30u);
  for (std::size_t i = 1; i < traj.size(); ++i) {
    EXPECT_LE(traj[i], traj[i - 1]);
  }
}

TEST(TuningResultTest, SearchCostEqualsSumOfEvaluationCosts) {
  auto objective = make_objective(3);
  RandomSearch rs;
  const auto result = rs.tune(objective, 20, 9);
  double sum = 0.0;
  for (const auto& e : result.history) sum += e.cost_s;
  EXPECT_NEAR(result.search_cost_s, sum, 1e-9);
  EXPECT_NEAR(objective.total_cost_s(), sum, 1e-9);
}

TEST(TuningResultTest, SampledTimesExcludeHardFailures) {
  auto objective = make_objective(4, sparksim::WorkloadKind::kPageRank, 1);
  RandomSearch rs;
  const auto result = rs.tune(objective, 40, 11);
  for (double t : result.sampled_times()) {
    EXPECT_LE(t, 480.0);  // penalties (>480) never appear
  }
}

// ------------------------------------------------------- RandomSearch ----

TEST(RandomSearchTest, RespectsBudgetExactly) {
  auto objective = make_objective(5);
  RandomSearch rs;
  const auto result = rs.tune(objective, 25, 3);
  EXPECT_EQ(result.history.size(), 25u);
  EXPECT_EQ(objective.evaluations(), 25u);
  EXPECT_EQ(result.tuner, "RS");
}

TEST(RandomSearchTest, DeterministicPerSeed) {
  auto a = make_objective(6);
  auto b = make_objective(6);
  RandomSearch rs;
  const auto ra = rs.tune(a, 15, 42);
  const auto rb = rs.tune(b, 15, 42);
  ASSERT_EQ(ra.history.size(), rb.history.size());
  for (std::size_t i = 0; i < ra.history.size(); ++i) {
    EXPECT_EQ(ra.history[i].unit, rb.history[i].unit);
  }
}

TEST(RandomSearchTest, DifferentSeedsExploreDifferently) {
  auto a = make_objective(7);
  auto b = make_objective(7);
  RandomSearch rs;
  EXPECT_NE(rs.tune(a, 10, 1).history[0].unit,
            rs.tune(b, 10, 2).history[0].unit);
}

// --------------------------------------------------------- BestConfig ----

TEST(BestConfigTest, SingleRoundAtPaperSettings) {
  // sample_set_size=100 with budget 100 -> one DDS round, pure exploration
  // (exactly the paper's observation in §5.2).
  auto objective = make_objective(8);
  BestConfig bc;
  const auto result = bc.tune(objective, 100, 5);
  EXPECT_EQ(result.history.size(), 100u);
  EXPECT_EQ(result.tuner, "BestConfig");
}

TEST(BestConfigTest, SmallSampleSetTriggersRecursiveBoundAndSearch) {
  auto objective = make_objective(9);
  BestConfigOptions options;
  options.sample_set_size = 10;
  BestConfig bc(options);
  const auto result = bc.tune(objective, 50, 5);
  EXPECT_EQ(result.history.size(), 50u);
  // Later rounds concentrate: some late sample must be closer to the best
  // than the typical first-round spread.
  const auto& best = result.best_unit();
  double min_late_distance = std::numeric_limits<double>::infinity();
  for (std::size_t i = 40; i < 50; ++i) {
    double d = 0.0;
    for (std::size_t k = 0; k < best.size(); ++k) {
      d += std::abs(result.history[i].unit[k] - best[k]);
    }
    min_late_distance = std::min(min_late_distance, d);
  }
  EXPECT_LT(min_late_distance, 0.25 * static_cast<double>(best.size()));
}

TEST(BestConfigTest, BudgetSmallerThanSampleSetStillWorks) {
  auto objective = make_objective(10);
  const auto result = BestConfig().tune(objective, 17, 3);
  EXPECT_EQ(result.history.size(), 17u);
}

// ------------------------------------------------------------ Gunther ----

TEST(GuntherTest, RespectsBudget) {
  auto objective = make_objective(11);
  Gunther g;
  const auto result = g.tune(objective, 60, 5);
  EXPECT_EQ(result.history.size(), 60u);
  EXPECT_EQ(result.tuner, "Gunther");
}

TEST(GuntherTest, InitialPopulationDominatesBudgetAtHighDims) {
  // The paper's critique (§6): 2 initial configs per parameter over 44
  // parameters consumes most of a 100-evaluation budget.
  auto objective = make_objective(12);
  GuntherOptions options;
  Gunther g(options);
  const auto result = g.tune(objective, 100, 5);
  // 85% cap applies: exactly 85 random initial evaluations.
  EXPECT_EQ(result.history.size(), 100u);
  const int init = static_cast<int>(
      std::min(options.initial_per_param * 44.0,
               100.0 * options.max_initial_budget_fraction));
  EXPECT_EQ(init, 85);
}

TEST(GuntherTest, TinyBudgetOnlyRunsInitialPopulation) {
  auto objective = make_objective(13);
  Gunther g;
  const auto result = g.tune(objective, 5, 5);
  EXPECT_EQ(result.history.size(), 5u);
}

TEST(GuntherTest, GenesStayInUnitCube) {
  auto objective = make_objective(14);
  Gunther g;
  const auto result = g.tune(objective, 40, 9);
  for (const auto& e : result.history) {
    for (double v : e.unit) {
      EXPECT_GE(v, 0.0);
      EXPECT_LT(v, 1.0);
    }
  }
}

// ------------------------------------------- cross-tuner sanity sweep ----

class AllTunersTest : public ::testing::TestWithParam<int> {};

TEST_P(AllTunersTest, EveryTunerFindsAWorkingConfiguration) {
  const int which = GetParam();
  std::unique_ptr<Tuner> tuner;
  switch (which) {
    case 0:
      tuner = std::make_unique<RandomSearch>();
      break;
    case 1:
      tuner = std::make_unique<BestConfig>();
      break;
    default:
      tuner = std::make_unique<Gunther>();
      break;
  }
  auto objective = make_objective(20 + static_cast<std::uint64_t>(which));
  const auto result = tuner->tune(objective, 30, 77);
  EXPECT_TRUE(result.found_any()) << result.tuner;
  EXPECT_LT(result.best_value_s(), 480.0) << result.tuner;
  EXPECT_GT(result.search_cost_s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Tuners, AllTunersTest, ::testing::Range(0, 3));

}  // namespace
}  // namespace robotune::tuners
