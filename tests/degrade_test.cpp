// Tests for the self-healing tuning core: the surrogate degradation
// ladder under forced (chaos-injected) failures, byte-identical degraded
// sessions at any parallelism, the GP add_point rollback guarantee, and
// the non-finite-observation quarantine.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/chaos.h"
#include "common/error.h"
#include "core/robotune.h"
#include "exec/eval_scheduler.h"
#include "gp/gaussian_process.h"
#include "gp/kernel.h"
#include "obs/metrics.h"
#include "sparksim/objective.h"
#include "tuners/tuner.h"

namespace robotune::core {
namespace {

using sparksim::WorkloadKind;

sparksim::SparkObjective make_objective(std::uint64_t seed = 13) {
  return sparksim::SparkObjective(sparksim::ClusterSpec{},
                                  sparksim::make_workload(
                                      WorkloadKind::kTeraSort, 1),
                                  sparksim::spark24_config_space(), seed);
}

RoboTuneOptions fast_robotune() {
  RoboTuneOptions options;
  options.selection.generic_samples = 50;
  options.selection.forest_trees = 60;
  options.selection.permutation_repeats = 2;
  options.bo.initial_samples = 10;
  options.bo.hyperfit_every = 10;
  return options;
}

bool has_rung(const std::vector<DegradeEvent>& events,
              const std::string& rung) {
  for (const auto& e : events) {
    if (e.rung == rung) return true;
  }
  return false;
}

std::string serialize(SessionCheckpoint state) {
  // Parallel sessions journal in completion order; compare the canonical
  // (index-ordered) form, exactly what a resume would replay.
  canonicalize_journal(state);
  std::stringstream out;
  save_session(state, out);
  return out.str();
}

void expect_results_equal(const tuners::TuningResult& a,
                          const tuners::TuningResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].unit, b.history[i].unit) << "evaluation " << i;
    EXPECT_EQ(a.history[i].value_s, b.history[i].value_s) << i;
    EXPECT_EQ(a.history[i].cost_s, b.history[i].cost_s) << i;
    EXPECT_EQ(a.history[i].status, b.history[i].status) << i;
  }
  EXPECT_EQ(a.best_index, b.best_index);
  EXPECT_DOUBLE_EQ(a.search_cost_s, b.search_cost_s);
}

class DegradeTest : public ::testing::Test {
 protected:
  void TearDown() override { chaos::injector().disarm(); }
};

// Every Cholesky factorization fails, so every round walks the whole
// ladder — and the session must still complete its full 100-eval budget
// on space-filling fallback proposals.
TEST_F(DegradeTest, ForcedSurrogateFailureCompletesTheFullBudget) {
  if (!chaos::kCompiledIn) GTEST_SKIP() << "built with ROBOTUNE_CHAOS=OFF";
  obs::metrics().reset();
  chaos::ChaosProfile profile;
  ASSERT_TRUE(chaos::ChaosProfile::parse("surrogate", profile));
  chaos::injector().configure(profile, 5);

  auto objective = make_objective();
  RoboTune tuner(fast_robotune());
  SessionLog session;
  const auto report = tuner.tune_report(objective, 100, 5, nullptr, &session);

  EXPECT_EQ(report.tuning.history.size(), 100u);
  EXPECT_TRUE(report.tuning.found_any());
  EXPECT_FALSE(report.bo.interrupted);

  // All ladder rungs were exercised and journaled...
  const auto& events = session.state.degrade_events;
  EXPECT_TRUE(has_rung(events, "gp_refit"));
  EXPECT_TRUE(has_rung(events, "gp_noise_inflate"));
  EXPECT_TRUE(has_rung(events, "gp_skip"));
  EXPECT_TRUE(has_rung(events, "fallback_proposal"));

  // ...and surfaced as observability counters.
  if (obs::kCompiledIn) {
    const auto snapshot = obs::metrics().snapshot();
    EXPECT_GT(snapshot.counters.at("degrade.gp_refit"), 0u);
    EXPECT_GT(snapshot.counters.at("degrade.gp_noise_inflate"), 0u);
    EXPECT_GT(snapshot.counters.at("degrade.gp_skip"), 0u);
    EXPECT_GT(snapshot.counters.at("degrade.fallback_proposal"), 0u);
    EXPECT_GT(snapshot.counters.at("chaos.cholesky"), 0u);
  }
  EXPECT_GT(chaos::injector().injections(chaos::Site::kCholesky), 0u);
}

// Two identically-seeded degraded sessions are byte-identical — history,
// best configuration, and the serialized journal — whether the batches
// ran on one worker or four.
TEST_F(DegradeTest, DegradedSessionsAreByteIdenticalAtAnyParallelism) {
  if (!chaos::kCompiledIn) GTEST_SKIP() << "built with ROBOTUNE_CHAOS=OFF";
  chaos::ChaosProfile profile;
  ASSERT_TRUE(chaos::ChaosProfile::parse("surrogate", profile));

  const auto run_at = [&](int workers) {
    // configure() resets the injector's counters, so each run replays
    // the identical chaos decision sequence.
    chaos::injector().configure(profile, 5);
    exec::SchedulerOptions sched;
    sched.parallelism = workers;
    exec::EvalScheduler scheduler(sched);
    auto objective = make_objective();
    RoboTune tuner(fast_robotune());
    SessionLog session;
    auto report =
        tuner.tune_report(objective, 30, 5, nullptr, &session, &scheduler);
    return std::make_pair(std::move(report), serialize(session.state));
  };

  const auto [report1, journal1] = run_at(1);
  const auto [report4, journal4] = run_at(4);

  expect_results_equal(report1.tuning, report4.tuning);
  EXPECT_EQ(report1.tuning.best_unit(), report4.tuning.best_unit());
  EXPECT_EQ(journal1, journal4);
  // The degraded session really degraded.
  EXPECT_NE(journal1.find("fallback_proposal"), std::string::npos);
}

// A fractional failure rate (the soak profile) must be just as
// reproducible: decisions are a pure function of (seed, site, counter),
// never of scheduling.
TEST_F(DegradeTest, PartialChaosSoakIsDeterministic) {
  if (!chaos::kCompiledIn) GTEST_SKIP() << "built with ROBOTUNE_CHAOS=OFF";
  chaos::ChaosProfile profile;
  ASSERT_TRUE(chaos::ChaosProfile::parse("cholesky=0.25,acq=0.25", profile));

  const auto run_at = [&](int workers) {
    chaos::injector().configure(profile, 21);
    exec::SchedulerOptions sched;
    sched.parallelism = workers;
    exec::EvalScheduler scheduler(sched);
    auto objective = make_objective();
    RoboTune tuner(fast_robotune());
    SessionLog session;
    auto report =
        tuner.tune_report(objective, 30, 21, nullptr, &session, &scheduler);
    return std::make_pair(std::move(report), serialize(session.state));
  };

  const auto [report1, journal1] = run_at(1);
  const auto [report4, journal4] = run_at(4);
  expect_results_equal(report1.tuning, report4.tuning);
  EXPECT_EQ(journal1, journal4);
  EXPECT_EQ(report1.tuning.history.size(), 30u);
}

// A degraded session's checkpoint must resume exactly like a healthy
// one: kill it mid-budget, resume under the same chaos seed, and the
// continuation matches the uninterrupted degraded run.
TEST_F(DegradeTest, DegradedSessionResumesIdentically) {
  if (!chaos::kCompiledIn) GTEST_SKIP() << "built with ROBOTUNE_CHAOS=OFF";
  chaos::ChaosProfile profile;
  ASSERT_TRUE(chaos::ChaosProfile::parse("surrogate", profile));

  chaos::injector().configure(profile, 5);
  auto full_objective = make_objective();
  RoboTune full_tuner(fast_robotune());
  SessionLog full_session;
  const auto uninterrupted = full_tuner.tune_report(full_objective, 20, 5,
                                                    nullptr, &full_session);

  SessionLog resumed_session;
  resumed_session.state = full_session.state;
  resumed_session.state.evaluations.resize(14);
  chaos::injector().configure(profile, 5);  // chaos replays from the top
  auto resumed_objective = make_objective();
  RoboTune resumed_tuner(fast_robotune());
  const auto resumed = resumed_tuner.tune_report(resumed_objective, 20, 5,
                                                 nullptr, &resumed_session);
  expect_results_equal(uninterrupted.tuning, resumed.tuning);
  // The regenerated degrade journal matches the uninterrupted one.
  EXPECT_EQ(serialize(resumed_session.state),
            serialize(full_session.state));
}

// ------------------------------------------- add_point rollback ----------

TEST_F(DegradeTest, AddPointRollsBackWhenRefactorizationFails) {
  if (!chaos::kCompiledIn) GTEST_SKIP() << "built with ROBOTUNE_CHAOS=OFF";
  gp::GpOptions options;
  options.optimize_hyperparameters = false;
  // A signal variance of 1e8 swamps both the 1e-10 jitter floor and the
  // degenerate-path threshold (1e8 + 1e-10 == 1e8 in double), so a
  // duplicate training point collapses the rank-one update's Schur
  // complement to zero and add_point must fall back to the full
  // refactorization — exactly where the forced Cholesky failure lands.
  gp::GaussianProcess model(
      std::make_unique<gp::Matern52Ard>(2, 0.5, 1e8), options, 7);
  const std::vector<std::vector<double>> xs = {
      {0.1, 0.2}, {0.6, 0.7}, {0.9, 0.3}};
  const std::vector<double> ys = {1.0, 2.0, 3.0};
  model.fit(xs, ys);

  const std::vector<double> probe = {0.45, 0.55};

  chaos::ChaosProfile profile;
  profile.cholesky_failure = 1.0;
  chaos::injector().configure(profile, 3);
  // The duplicate reaches the degenerate path on the first add on every
  // platform we build for; the bounded retry only hedges against FP
  // contraction pushing an early Schur complement a hair above the
  // threshold (each fast-path add then shrinks the next pivot further,
  // so the collapse is inevitable).  Fast-path adds never factorize, so
  // the armed injector cannot fire on them.
  bool degenerate_hit = false;
  gp::Prediction before;
  for (int attempt = 0; attempt < 8 && !degenerate_hit; ++attempt) {
    before = model.predict(probe);
    try {
      model.add_point(xs[1], 2.5);
    } catch (const NumericalError&) {
      degenerate_hit = true;
    }
  }
  chaos::injector().disarm();
  ASSERT_TRUE(degenerate_hit) << "degenerate add_point path never reached";

  // Strong exception guarantee: the model is unchanged and usable.
  const auto after = model.predict(probe);
  EXPECT_EQ(before.mean, after.mean);
  EXPECT_EQ(before.variance, after.variance);

  // And the same update succeeds once the failure clears.
  EXPECT_NO_THROW(model.add_point(xs[1], 2.5));
  EXPECT_NO_THROW(model.predict(probe));
}

// --------------------------------------- non-finite quarantine -----------

TEST_F(DegradeTest, NonFiniteObservationsAreQuarantined) {
  tuners::GuardPolicy guard(480.0, 2.5);
  tuners::TuningResult result;

  tuners::Evaluation good;
  good.unit = {0.5};
  good.value_s = 100.0;
  good.cost_s = 100.0;
  tuners::append_evaluation(good, guard, result);
  EXPECT_EQ(result.best_index, 0u);

  tuners::Evaluation poisoned;
  poisoned.unit = {0.25};
  poisoned.value_s = std::numeric_limits<double>::quiet_NaN();
  poisoned.cost_s = std::numeric_limits<double>::infinity();
  tuners::append_evaluation(poisoned, guard, result);

  // Censored in place: finite values, classified like a transient run,
  // charged to the session, never the incumbent.
  ASSERT_EQ(result.history.size(), 2u);
  const auto& q = result.history[1];
  EXPECT_TRUE(std::isfinite(q.value_s));
  EXPECT_TRUE(std::isfinite(q.cost_s));
  EXPECT_TRUE(q.transient);
  EXPECT_DOUBLE_EQ(q.value_s, 480.0);  // censored at the guard threshold
  EXPECT_EQ(result.best_index, 0u);    // the NaN never became the best
  EXPECT_TRUE(std::isfinite(result.search_cost_s));

  tuners::Evaluation negative_inf;
  negative_inf.unit = {0.75};
  negative_inf.value_s = -std::numeric_limits<double>::infinity();
  negative_inf.cost_s = 10.0;
  tuners::append_evaluation(negative_inf, guard, result);
  EXPECT_TRUE(std::isfinite(result.history[2].value_s));
  EXPECT_TRUE(result.history[2].transient);
  EXPECT_EQ(result.best_index, 0u);  // -inf would otherwise win everything
}

}  // namespace
}  // namespace robotune::core
