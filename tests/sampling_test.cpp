// Unit & property tests for Latin Hypercube Sampling.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/error.h"
#include "common/rng.h"
#include "sampling/latin_hypercube.h"

namespace robotune::sampling {
namespace {

TEST(LhsTest, ShapeMatchesRequest) {
  Rng rng(1);
  const auto d = latin_hypercube(20, 5, rng);
  ASSERT_EQ(d.size(), 20u);
  for (const auto& row : d) EXPECT_EQ(row.size(), 5u);
}

TEST(LhsTest, SatisfiesLatinProperty) {
  Rng rng(2);
  const auto d = latin_hypercube(50, 7, rng);
  EXPECT_TRUE(is_latin(d));
}

TEST(LhsTest, CenteredVariantSitsOnStratumCenters) {
  Rng rng(3);
  LhsOptions options;
  options.jitter_within_stratum = false;
  const auto d = latin_hypercube(10, 2, rng, options);
  for (const auto& row : d) {
    for (double x : row) {
      const double scaled = x * 10.0;
      EXPECT_NEAR(scaled - std::floor(scaled), 0.5, 1e-12);
    }
  }
  EXPECT_TRUE(is_latin(d));
}

TEST(LhsTest, DeterministicGivenSeed) {
  Rng a(42), b(42);
  const auto d1 = latin_hypercube(15, 4, a);
  const auto d2 = latin_hypercube(15, 4, b);
  EXPECT_EQ(d1, d2);
}

TEST(LhsTest, DifferentSeedsProduceDifferentDesigns) {
  Rng a(1), b(2);
  EXPECT_NE(latin_hypercube(15, 4, a), latin_hypercube(15, 4, b));
}

TEST(LhsTest, MaximinImprovesMinDistanceOverPlain) {
  // Statistically: the best-of-10 design should have min pairwise distance
  // at least as large as a single draw, on average.
  double plain_sum = 0.0, maximin_sum = 0.0;
  for (int rep = 0; rep < 10; ++rep) {
    Rng rng(100 + rep);
    LhsOptions plain;
    plain.maximin_candidates = 1;
    plain_sum += min_pairwise_distance(latin_hypercube(30, 6, rng, plain));
    Rng rng2(100 + rep);
    LhsOptions mm;
    mm.maximin_candidates = 10;
    maximin_sum += min_pairwise_distance(latin_hypercube(30, 6, rng2, mm));
  }
  EXPECT_GE(maximin_sum, plain_sum);
}

TEST(LhsTest, SingleSampleIsValid) {
  Rng rng(5);
  const auto d = latin_hypercube(1, 3, rng);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_TRUE(is_latin(d));
}

TEST(LhsTest, ZeroCountThrows) {
  Rng rng(6);
  EXPECT_THROW(latin_hypercube(0, 3, rng), InvalidArgument);
  EXPECT_THROW(latin_hypercube(3, 0, rng), InvalidArgument);
}

TEST(UniformRandomTest, BoundsAndShape) {
  Rng rng(7);
  const auto d = uniform_random(100, 4, rng);
  ASSERT_EQ(d.size(), 100u);
  for (const auto& row : d) {
    for (double x : row) {
      EXPECT_GE(x, 0.0);
      EXPECT_LT(x, 1.0);
    }
  }
}

TEST(UniformRandomTest, IsUsuallyNotLatin) {
  // With 100 points the probability that pure random sampling satisfies
  // the Latin property is essentially zero.
  Rng rng(8);
  const auto d = uniform_random(100, 3, rng);
  EXPECT_FALSE(is_latin(d));
}

TEST(MinPairwiseDistanceTest, KnownConfiguration) {
  Design d = {{0.0, 0.0}, {0.3, 0.4}, {1.0, 1.0}};
  EXPECT_NEAR(min_pairwise_distance(d), 0.5, 1e-12);
}

TEST(MinPairwiseDistanceTest, FewerThanTwoIsInfinite) {
  Design d = {{0.5}};
  EXPECT_TRUE(std::isinf(min_pairwise_distance(d)));
}

TEST(IsLatinTest, DetectsDuplicateStratum) {
  // Two points in the same stratum of dimension 0.
  Design d = {{0.1, 0.1}, {0.15, 0.6}};
  EXPECT_FALSE(is_latin(d));
}

TEST(IsLatinTest, DetectsOutOfRange) {
  Design d = {{1.2, 0.5}, {0.1, 0.9}};
  EXPECT_FALSE(is_latin(d));
}

// Property sweep over (count, dims): the Latin property and per-dimension
// marginal uniformity hold for every configuration.
class LhsPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(LhsPropertyTest, LatinAndMarginallyUniform) {
  const auto [count, dims] = GetParam();
  Rng rng(count * 31 + dims);
  const auto d = latin_hypercube(count, dims, rng);
  EXPECT_TRUE(is_latin(d));
  // Marginal mean of each dimension must be ~0.5 by the stratification.
  for (std::size_t k = 0; k < dims; ++k) {
    double sum = 0.0;
    for (const auto& row : d) sum += row[k];
    EXPECT_NEAR(sum / static_cast<double>(count), 0.5,
                0.5 / static_cast<double>(count) + 0.08);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LhsPropertyTest,
    ::testing::Combine(::testing::Values<std::size_t>(2, 10, 20, 100),
                       ::testing::Values<std::size_t>(1, 3, 9, 44)));

}  // namespace
}  // namespace robotune::sampling
