// Cross-cutting property/invariant tests: relationships that must hold
// for all inputs, swept over parameter grids.
#include <gtest/gtest.h>

#include <cmath>

#include "common/statistics.h"
#include "core/bo_engine.h"
#include "sparksim/cluster.h"
#include "sparksim/objective.h"
#include "tuners/random_search.h"

namespace robotune {
namespace {

const sparksim::ConfigSpace& space() {
  static const auto s = sparksim::spark24_config_space();
  return s;
}

// ---- ParamSpec: decode is monotone in the unit coordinate ---------------

class DecodeMonotoneTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DecodeMonotoneTest, NumericDecodeIsNonDecreasing) {
  const auto& spec = space().spec(GetParam());
  double prev = -std::numeric_limits<double>::infinity();
  for (int i = 0; i <= 100; ++i) {
    const double u = i / 100.0;
    const double v = spec.decode(u);
    if (spec.kind == sparksim::ParamKind::kInt ||
        spec.kind == sparksim::ParamKind::kDouble) {
      EXPECT_GE(v, prev) << spec.name << " at u=" << u;
    }
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(All44, DecodeMonotoneTest,
                         ::testing::Range<std::size_t>(0, 44));

// ---- Placement: resource conservation ------------------------------------

TEST(PlacementInvariantTest, NeverOversubscribesTheCluster) {
  sparksim::ClusterSpec cluster;
  Rng rng(3);
  for (int rep = 0; rep < 500; ++rep) {
    std::vector<double> unit(space().size());
    for (auto& u : unit) u = rng.uniform();
    const auto config =
        sparksim::SparkConfig::from_decoded(space(), space().decode(unit));
    const auto p = sparksim::place_executors(cluster, config);
    if (p.infeasible) continue;
    // Cores.
    EXPECT_LE(p.executors_per_node * config.executor_cores,
              cluster.cores_per_node);
    // Memory footprint per node.
    const int footprint = config.executor_memory_mb +
                          config.executor_memory_overhead_mb +
                          (config.offheap_enabled ? config.offheap_size_mb
                                                  : 0);
    EXPECT_LE(p.executors_per_node * footprint,
              cluster.usable_memory_per_node_mb());
    // Slots are consistent with the executor count.
    EXPECT_EQ(p.total_slots, p.total_executors * p.slots_per_executor);
    EXPECT_GE(p.total_executors, 1);
  }
}

// ---- Objective: cost accounting invariants --------------------------------

TEST(ObjectiveInvariantTest, CostNeverExceedsThresholdOrCap) {
  auto objective = sparksim::SparkObjective(
      sparksim::ClusterSpec{},
      sparksim::make_workload(sparksim::WorkloadKind::kKMeans, 2), space(),
      11);
  Rng rng(5);
  std::vector<double> unit(space().size());
  for (int rep = 0; rep < 200; ++rep) {
    for (auto& u : unit) u = rng.uniform();
    const double threshold = rng.uniform(30.0, 600.0);
    const auto out = objective.evaluate(unit, threshold);
    const double kill = std::min(threshold, objective.time_cap_s());
    EXPECT_LE(out.cost_s, kill + 1e-9);
    if (out.status == sparksim::RunStatus::kOk) {
      EXPECT_LE(out.value_s, kill + 1e-9);
      EXPECT_DOUBLE_EQ(out.value_s, out.cost_s);
    }
  }
}

TEST(ObjectiveInvariantTest, TotalCostEqualsSumOfOutcomes) {
  auto objective = sparksim::SparkObjective(
      sparksim::ClusterSpec{},
      sparksim::make_workload(sparksim::WorkloadKind::kTeraSort, 1), space(),
      13);
  Rng rng(7);
  std::vector<double> unit(space().size());
  double expected = 0.0;
  for (int rep = 0; rep < 50; ++rep) {
    for (auto& u : unit) u = rng.uniform();
    expected += objective.evaluate(unit, 480.0).cost_s;
  }
  EXPECT_NEAR(objective.total_cost_s(), expected, 1e-9);
  EXPECT_EQ(objective.evaluations(), 50u);
}

// ---- Tuning results --------------------------------------------------------

TEST(ResultInvariantTest, TrajectoryEndEqualsBestValue) {
  auto objective = sparksim::SparkObjective(
      sparksim::ClusterSpec{},
      sparksim::make_workload(sparksim::WorkloadKind::kTeraSort, 1), space(),
      17);
  tuners::RandomSearch rs;
  const auto result = rs.tune(objective, 25, 3);
  const auto traj = result.best_trajectory();
  EXPECT_DOUBLE_EQ(traj.back(), result.best_value_s());
}

TEST(ResultInvariantTest, BestIndexPointsAtSuccessfulMinimum) {
  auto objective = sparksim::SparkObjective(
      sparksim::ClusterSpec{},
      sparksim::make_workload(sparksim::WorkloadKind::kPageRank, 1), space(),
      19);
  tuners::RandomSearch rs;
  const auto result = rs.tune(objective, 40, 5);
  ASSERT_TRUE(result.found_any());
  const auto& best = result.history[result.best_index];
  EXPECT_TRUE(best.ok());
  for (const auto& e : result.history) {
    if (e.ok()) {
      EXPECT_GE(e.value_s, best.value_s);
    }
  }
}

// ---- BO expand clipping -----------------------------------------------------

TEST(BoInvariantTest, ExpandClipsOutOfRangeSubCoordinates) {
  core::BoOptions options;
  options.budget = 12;
  options.initial_samples = 10;
  core::BoEngine engine({0, 1}, space().default_unit(), options);
  const auto full = engine.expand({-0.5, 1.5});
  EXPECT_GE(full[0], 0.0);
  EXPECT_LT(full[1], 1.0);
}

// ---- Simulator determinism across the whole grid ---------------------------

class DeterminismTest
    : public ::testing::TestWithParam<sparksim::WorkloadKind> {};

TEST_P(DeterminismTest, IdenticalSeedsGiveIdenticalRuns) {
  Rng rng(23);
  std::vector<double> unit(space().size());
  for (auto& u : unit) u = rng.uniform();
  const auto config =
      sparksim::SparkConfig::from_decoded(space(), space().decode(unit));
  sparksim::EngineOptions options;
  const auto a = sparksim::simulate(sparksim::ClusterSpec{},
                                    sparksim::make_workload(GetParam(), 2),
                                    config, 999, options);
  const auto b = sparksim::simulate(sparksim::ClusterSpec{},
                                    sparksim::make_workload(GetParam(), 2),
                                    config, 999, options);
  EXPECT_EQ(a.status, b.status);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.stage_seconds, b.stage_seconds);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, DeterminismTest,
    ::testing::Values(sparksim::WorkloadKind::kPageRank,
                      sparksim::WorkloadKind::kKMeans,
                      sparksim::WorkloadKind::kConnectedComponents,
                      sparksim::WorkloadKind::kLogisticRegression,
                      sparksim::WorkloadKind::kTeraSort));

// ---- Noise scaling ----------------------------------------------------------

TEST(NoiseInvariantTest, HigherSigmaSpreadsRepeatsMore) {
  const auto config =
      sparksim::SparkConfig::from_decoded(space(), space().defaults());
  auto spread = [&](double sigma) {
    sparksim::EngineOptions options;
    options.run_noise_sigma = sigma;
    std::vector<double> times;
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
      times.push_back(sparksim::simulate(
                          sparksim::ClusterSpec{},
                          sparksim::make_workload(
                              sparksim::WorkloadKind::kKMeans, 1),
                          config, seed, options)
                          .seconds);
    }
    return stats::stddev(times) / stats::mean(times);
  };
  EXPECT_LT(spread(0.01), spread(0.15));
}

}  // namespace
}  // namespace robotune
