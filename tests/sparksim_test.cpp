// Tests for the Spark cluster simulator: configuration space, typed
// config extraction, executor placement, workload models, execution
// engine, and the tuning objective.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "sparksim/cluster.h"
#include "sparksim/engine.h"
#include "sparksim/objective.h"
#include "sparksim/param_space.h"
#include "sparksim/spark_config.h"
#include "sparksim/workload.h"

namespace robotune::sparksim {
namespace {

const ConfigSpace& space() {
  static const ConfigSpace s = spark24_config_space();
  return s;
}

// ------------------------------------------------------- ConfigSpace ----

TEST(ConfigSpaceTest, HasExactly44Parameters) {
  EXPECT_EQ(space().size(), 44u);
}

TEST(ConfigSpaceTest, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto& spec : space().specs()) names.insert(spec.name);
  EXPECT_EQ(names.size(), space().size());
}

TEST(ConfigSpaceTest, IndexOfFindsKnownParameters) {
  EXPECT_TRUE(space().index_of("spark.executor.cores").has_value());
  EXPECT_TRUE(space().index_of("spark.serializer").has_value());
  EXPECT_FALSE(space().index_of("spark.nonexistent").has_value());
}

TEST(ConfigSpaceTest, DecodeRespectsRanges) {
  Rng rng(1);
  for (int rep = 0; rep < 200; ++rep) {
    std::vector<double> unit(space().size());
    for (auto& u : unit) u = rng.uniform();
    const auto decoded = space().decode(unit);
    for (std::size_t i = 0; i < space().size(); ++i) {
      const auto& spec = space().spec(i);
      switch (spec.kind) {
        case ParamKind::kInt:
        case ParamKind::kDouble:
          EXPECT_GE(decoded[i], spec.lo) << spec.name;
          EXPECT_LE(decoded[i], spec.hi) << spec.name;
          break;
        case ParamKind::kBool:
          EXPECT_TRUE(decoded[i] == 0.0 || decoded[i] == 1.0) << spec.name;
          break;
        case ParamKind::kCategorical:
          EXPECT_GE(decoded[i], 0.0);
          EXPECT_LT(decoded[i], static_cast<double>(spec.categories.size()));
          break;
      }
    }
  }
}

TEST(ConfigSpaceTest, IntDecodeIsIntegral) {
  Rng rng(2);
  std::vector<double> unit(space().size());
  for (auto& u : unit) u = rng.uniform();
  const auto decoded = space().decode(unit);
  for (std::size_t i = 0; i < space().size(); ++i) {
    if (space().spec(i).kind == ParamKind::kInt) {
      EXPECT_DOUBLE_EQ(decoded[i], std::round(decoded[i]))
          << space().spec(i).name;
    }
  }
}

TEST(ConfigSpaceTest, EncodeDecodeRoundTripsDecodedValues) {
  Rng rng(3);
  for (int rep = 0; rep < 50; ++rep) {
    std::vector<double> unit(space().size());
    for (auto& u : unit) u = rng.uniform();
    const auto decoded = space().decode(unit);
    const auto re_encoded = space().encode(decoded);
    const auto re_decoded = space().decode(re_encoded);
    for (std::size_t i = 0; i < space().size(); ++i) {
      // Log-scaled integers may shift by rounding; everything else must
      // reproduce exactly.
      if (space().spec(i).log_scale) {
        EXPECT_NEAR(re_decoded[i], decoded[i],
                    std::max(1.0, 0.02 * std::abs(decoded[i])))
            << space().spec(i).name;
      } else {
        EXPECT_DOUBLE_EQ(re_decoded[i], decoded[i]) << space().spec(i).name;
      }
    }
  }
}

TEST(ConfigSpaceTest, DefaultsMatchSparkDocumentation) {
  const auto d = space().defaults();
  const auto idx = [&](const char* n) { return *space().index_of(n); };
  EXPECT_DOUBLE_EQ(d[idx("spark.executor.memory.mb")], 1024.0);
  EXPECT_DOUBLE_EQ(d[idx("spark.executor.cores")], 1.0);
  EXPECT_DOUBLE_EQ(d[idx("spark.memory.fraction")], 0.6);
  EXPECT_DOUBLE_EQ(d[idx("spark.serializer")], 0.0);  // JavaSerializer
  EXPECT_DOUBLE_EQ(d[idx("spark.shuffle.compress")], 1.0);
  EXPECT_DOUBLE_EQ(d[idx("spark.speculation")], 0.0);
}

TEST(ConfigSpaceTest, DefaultExecutorMemoryIsBelowTunedRange) {
  // §5.1: tuned memory range starts at 8 GB while the framework default is
  // 1 GB — the source of the default-config OOMs in §5.2.
  const auto& spec =
      space().spec(*space().index_of("spark.executor.memory.mb"));
  EXPECT_LT(spec.default_value, spec.lo);
}

TEST(ConfigSpaceTest, JointGroupsReferenceRealParameters) {
  for (const auto& group : spark24_joint_parameter_groups()) {
    EXPECT_GE(group.size(), 2u);
    for (const auto& name : group) {
      EXPECT_TRUE(space().index_of(name).has_value()) << name;
    }
  }
}

TEST(ParamSpecTest, BoolEncodeDecode) {
  ParamSpec spec;
  spec.kind = ParamKind::kBool;
  EXPECT_DOUBLE_EQ(spec.decode(0.49), 0.0);
  EXPECT_DOUBLE_EQ(spec.decode(0.51), 1.0);
  EXPECT_DOUBLE_EQ(spec.decode(spec.encode(1.0)), 1.0);
  EXPECT_DOUBLE_EQ(spec.decode(spec.encode(0.0)), 0.0);
  EXPECT_EQ(spec.cardinality(), 2u);
}

TEST(ParamSpecTest, CategoricalBucketsAreEven) {
  ParamSpec spec;
  spec.kind = ParamKind::kCategorical;
  spec.categories = {"a", "b", "c", "d"};
  EXPECT_DOUBLE_EQ(spec.decode(0.0), 0.0);
  EXPECT_DOUBLE_EQ(spec.decode(0.26), 1.0);
  EXPECT_DOUBLE_EQ(spec.decode(0.99), 3.0);
  EXPECT_EQ(spec.cardinality(), 4u);
}

TEST(ParamSpecTest, LogScaleCoversDecades) {
  ParamSpec spec;
  spec.kind = ParamKind::kInt;
  spec.lo = 10;
  spec.hi = 10000;
  spec.log_scale = true;
  EXPECT_DOUBLE_EQ(spec.decode(0.0), 10.0);
  EXPECT_NEAR(spec.decode(0.5), 316.0, 2.0);  // geometric midpoint
  EXPECT_NEAR(spec.decode(1.0 - 1e-12), 10000.0, 1.0);
}

// Parameterized round trip for every one of the 44 parameters.
class ParamRoundTripTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParamRoundTripTest, DecodeEncodeDecodeIsStable) {
  const auto& spec = space().spec(GetParam());
  for (double u : {0.0, 0.17, 0.33, 0.5, 0.77, 0.999}) {
    const double v = spec.decode(u);
    const double v2 = spec.decode(spec.encode(v));
    if (spec.log_scale) {
      EXPECT_NEAR(v2, v, std::max(1.0, 0.02 * std::abs(v))) << spec.name;
    } else {
      EXPECT_DOUBLE_EQ(v2, v) << spec.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(All44, ParamRoundTripTest,
                         ::testing::Range<std::size_t>(0, 44));

// ------------------------------------------------------- SparkConfig ----

TEST(SparkConfigTest, ExtractsTypedFieldsFromDefaults) {
  const auto config = SparkConfig::from_decoded(space(), space().defaults());
  EXPECT_EQ(config.executor_cores, 1);
  EXPECT_EQ(config.executor_memory_mb, 1024);
  EXPECT_EQ(config.serializer, Serializer::kJava);
  EXPECT_EQ(config.compression_codec, Codec::kLz4);
  EXPECT_TRUE(config.shuffle_compress);
  EXPECT_FALSE(config.speculation);
  EXPECT_EQ(config.gc_algo, GcAlgo::kParallel);
}

TEST(SparkConfigTest, ReflectsModifiedValues) {
  auto values = space().defaults();
  values[*space().index_of("spark.serializer")] = 1;
  values[*space().index_of("spark.executor.cores")] = 8;
  values[*space().index_of("spark.io.compression.codec")] = 3;
  const auto config = SparkConfig::from_decoded(space(), values);
  EXPECT_EQ(config.serializer, Serializer::kKryo);
  EXPECT_EQ(config.executor_cores, 8);
  EXPECT_EQ(config.compression_codec, Codec::kZstd);
}

TEST(SparkConfigTest, SizeMismatchThrows) {
  DecodedConfig bad(3, 0.0);
  EXPECT_THROW(SparkConfig::from_decoded(space(), bad), InvalidArgument);
}

// --------------------------------------------------------- placement ----

TEST(PlacementTest, DefaultsFillClusterWithOneCoreExecutors) {
  const auto config = SparkConfig::from_decoded(space(), space().defaults());
  const auto p = place_executors(ClusterSpec{}, config);
  EXPECT_FALSE(p.infeasible);
  EXPECT_EQ(p.total_executors, 160);  // 32 per node x 5 nodes
  EXPECT_EQ(p.slots_per_executor, 1);
  EXPECT_EQ(p.total_slots, 160);
}

TEST(PlacementTest, MemoryBoundPackingLimitsExecutors) {
  auto values = space().defaults();
  values[*space().index_of("spark.executor.cores")] = 2;
  values[*space().index_of("spark.executor.memory.mb")] = 90.0 * 1024;
  const auto config = SparkConfig::from_decoded(space(), values);
  const auto p = place_executors(ClusterSpec{}, config);
  // 184 GB usable / ~90.4 GB per executor = 2 executors per node.
  EXPECT_EQ(p.executors_per_node, 2);
  EXPECT_EQ(p.total_executors, 10);
  EXPECT_EQ(p.total_slots, 20);
}

TEST(PlacementTest, SingleExecutorLargerThanNodeIsInfeasible) {
  auto values = space().defaults();
  values[*space().index_of("spark.executor.memory.mb")] = 184320;
  values[*space().index_of("spark.executor.memoryOverhead.mb")] = 8192;
  const auto config = SparkConfig::from_decoded(space(), values);
  const auto p = place_executors(ClusterSpec{}, config);
  EXPECT_TRUE(p.infeasible);
}

TEST(PlacementTest, CoresMaxCapsTheGrant) {
  auto values = space().defaults();
  values[*space().index_of("spark.executor.cores")] = 4;
  values[*space().index_of("spark.cores.max")] = 32;
  const auto config = SparkConfig::from_decoded(space(), values);
  const auto p = place_executors(ClusterSpec{}, config);
  EXPECT_EQ(p.total_executors, 8);  // 32 cores / 4 per executor
  EXPECT_EQ(p.total_slots, 32);
}

TEST(PlacementTest, TaskCpusDividesSlots) {
  auto values = space().defaults();
  values[*space().index_of("spark.executor.cores")] = 8;
  values[*space().index_of("spark.task.cpus")] = 4;
  const auto config = SparkConfig::from_decoded(space(), values);
  const auto p = place_executors(ClusterSpec{}, config);
  EXPECT_EQ(p.slots_per_executor, 2);
}

TEST(PlacementTest, OffheapCountsTowardFootprint) {
  auto base = space().defaults();
  base[*space().index_of("spark.executor.cores")] = 2;
  base[*space().index_of("spark.executor.memory.mb")] = 60 * 1024;
  auto with_offheap = base;
  with_offheap[*space().index_of("spark.memory.offHeap.enabled")] = 1;
  with_offheap[*space().index_of("spark.memory.offHeap.size.mb")] = 32 * 1024;
  const auto p1 = place_executors(
      ClusterSpec{}, SparkConfig::from_decoded(space(), base));
  const auto p2 = place_executors(
      ClusterSpec{}, SparkConfig::from_decoded(space(), with_offheap));
  EXPECT_GT(p1.executors_per_node, p2.executors_per_node);
}

// ---------------------------------------------------------- workloads ----

TEST(WorkloadTest, Table1DatasetSizesScale) {
  for (auto kind : all_workloads()) {
    const auto d1 = make_workload(kind, 1);
    const auto d2 = make_workload(kind, 2);
    const auto d3 = make_workload(kind, 3);
    EXPECT_LT(d1.input_gb, d2.input_gb) << to_string(kind);
    EXPECT_LT(d2.input_gb, d3.input_gb) << to_string(kind);
    EXPECT_EQ(d1.dataset_label, "D1");
    EXPECT_EQ(d3.dataset_label, "D3");
  }
}

TEST(WorkloadTest, ShortNamesMatchPaper) {
  EXPECT_EQ(short_name(WorkloadKind::kPageRank), "PR");
  EXPECT_EQ(short_name(WorkloadKind::kKMeans), "KM");
  EXPECT_EQ(short_name(WorkloadKind::kConnectedComponents), "CC");
  EXPECT_EQ(short_name(WorkloadKind::kLogisticRegression), "LR");
  EXPECT_EQ(short_name(WorkloadKind::kTeraSort), "TS");
  EXPECT_EQ(make_workload(WorkloadKind::kPageRank, 2).full_name(), "PR-D2");
}

TEST(WorkloadTest, IterativeWorkloadsCacheAndIterate) {
  for (auto kind : {WorkloadKind::kPageRank, WorkloadKind::kKMeans,
                    WorkloadKind::kConnectedComponents,
                    WorkloadKind::kLogisticRegression}) {
    const auto w = make_workload(kind, 1);
    EXPECT_GT(w.iterations, 1) << to_string(kind);
    EXPECT_GT(w.cached_gb, 0.0) << to_string(kind);
    EXPECT_FALSE(w.iteration_stages.empty());
  }
}

TEST(WorkloadTest, TeraSortIsSinglePassNoCache) {
  const auto ts = make_workload(WorkloadKind::kTeraSort, 1);
  EXPECT_EQ(ts.iterations, 1);
  EXPECT_DOUBLE_EQ(ts.cached_gb, 0.0);
  EXPECT_TRUE(ts.setup_stages.empty());
}

TEST(WorkloadTest, InvalidDatasetThrows) {
  EXPECT_THROW(make_workload(WorkloadKind::kPageRank, 0), InvalidArgument);
  EXPECT_THROW(make_workload(WorkloadKind::kPageRank, 4), InvalidArgument);
}

// ------------------------------------------------------------- engine ----

SimResult run_config(const DecodedConfig& values, WorkloadKind kind,
                     int dataset, std::uint64_t seed = 1,
                     double noise = 0.0) {
  const auto config = SparkConfig::from_decoded(space(), values);
  EngineOptions options;
  options.run_noise_sigma = noise;
  return simulate(ClusterSpec{}, make_workload(kind, dataset), config, seed,
                  options);
}

DecodedConfig tuned_config() {
  auto v = space().defaults();
  const auto set = [&](const char* n, double val) {
    v[*space().index_of(n)] = val;
  };
  set("spark.executor.cores", 8);
  set("spark.executor.memory.mb", 32768);
  set("spark.memory.fraction", 0.7);
  set("spark.serializer", 1);
  set("spark.default.parallelism", 400);
  set("spark.executor.gc", 1);
  return v;
}

TEST(EngineTest, DeterministicForSeed) {
  const auto a = run_config(tuned_config(), WorkloadKind::kPageRank, 1, 7);
  const auto b = run_config(tuned_config(), WorkloadKind::kPageRank, 1, 7);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
}

TEST(EngineTest, NoiseVariesAcrossSeedsButStaysSmall) {
  const auto a =
      run_config(tuned_config(), WorkloadKind::kPageRank, 1, 1, 0.04);
  const auto b =
      run_config(tuned_config(), WorkloadKind::kPageRank, 1, 2, 0.04);
  EXPECT_NE(a.seconds, b.seconds);
  EXPECT_NEAR(a.seconds / b.seconds, 1.0, 0.4);
}

TEST(EngineTest, DefaultConfigOomsGraphWorkloads) {
  // §5.2: the 1 GB default executor memory kills PR and CC on all inputs.
  for (auto kind :
       {WorkloadKind::kPageRank, WorkloadKind::kConnectedComponents}) {
    for (int dataset = 1; dataset <= 3; ++dataset) {
      const auto r = run_config(space().defaults(), kind, dataset);
      EXPECT_EQ(r.status, RunStatus::kOom)
          << to_string(kind) << " D" << dataset;
    }
  }
}

TEST(EngineTest, DefaultConfigSurvivesKmAndLr) {
  for (auto kind :
       {WorkloadKind::kKMeans, WorkloadKind::kLogisticRegression}) {
    for (int dataset = 1; dataset <= 3; ++dataset) {
      const auto r = run_config(space().defaults(), kind, dataset);
      EXPECT_EQ(r.status, RunStatus::kOk)
          << to_string(kind) << " D" << dataset;
    }
  }
}

TEST(EngineTest, DefaultTeraSortOnlySurvivesSmallestInput) {
  // §5.2: TS runs with the default config on 20 GB but hits runtime errors
  // on the two larger datasets.
  EXPECT_EQ(run_config(space().defaults(), WorkloadKind::kTeraSort, 1).status,
            RunStatus::kOk);
  EXPECT_EQ(run_config(space().defaults(), WorkloadKind::kTeraSort, 2).status,
            RunStatus::kOom);
  EXPECT_EQ(run_config(space().defaults(), WorkloadKind::kTeraSort, 3).status,
            RunStatus::kOom);
}

TEST(EngineTest, TunedBeatsDefaultWhereDefaultSurvives) {
  for (auto kind : {WorkloadKind::kKMeans, WorkloadKind::kLogisticRegression}) {
    const auto def = run_config(space().defaults(), kind, 1);
    const auto tuned = run_config(tuned_config(), kind, 1);
    ASSERT_EQ(tuned.status, RunStatus::kOk);
    EXPECT_LT(tuned.seconds, def.seconds) << to_string(kind);
  }
}

TEST(EngineTest, KMeansDefaultEvictsCache) {
  const auto def = run_config(space().defaults(), WorkloadKind::kKMeans, 3);
  EXPECT_GT(def.metrics.cache_evicted_fraction, 0.3);
  const auto tuned = run_config(tuned_config(), WorkloadKind::kKMeans, 1);
  EXPECT_LT(tuned.metrics.cache_evicted_fraction, 0.05);
}

TEST(EngineTest, KryoFasterThanJavaOnShuffleHeavyWorkload) {
  auto java = tuned_config();
  java[*space().index_of("spark.serializer")] = 0;
  const auto with_java = run_config(java, WorkloadKind::kPageRank, 1);
  const auto with_kryo =
      run_config(tuned_config(), WorkloadKind::kPageRank, 1);
  EXPECT_LT(with_kryo.seconds, with_java.seconds);
}

TEST(EngineTest, MoreCoresHelpCpuBoundWorkload) {
  auto few = tuned_config();
  few[*space().index_of("spark.cores.max")] = 32;
  auto many = tuned_config();
  many[*space().index_of("spark.cores.max")] = 160;
  const auto slow = run_config(few, WorkloadKind::kKMeans, 1);
  const auto fast = run_config(many, WorkloadKind::kKMeans, 1);
  EXPECT_LT(fast.seconds, slow.seconds * 0.7);
}

TEST(EngineTest, TinyParallelismUnderutilizesTheCluster) {
  auto low = tuned_config();
  low[*space().index_of("spark.default.parallelism")] = 8;
  const auto slow = run_config(low, WorkloadKind::kPageRank, 1);
  const auto fast = run_config(tuned_config(), WorkloadKind::kPageRank, 1);
  if (slow.status == RunStatus::kOk) {
    EXPECT_GT(slow.seconds, fast.seconds);
  } else {
    // Giant partitions can also OOM, which is equally "worse".
    EXPECT_EQ(slow.status, RunStatus::kOom);
  }
}

TEST(EngineTest, TimeCapCutsLongRuns) {
  EngineOptions options;
  options.time_cap_s = 10.0;
  options.run_noise_sigma = 0.0;
  const auto config = SparkConfig::from_decoded(space(), tuned_config());
  const auto r = simulate(ClusterSpec{}, make_workload(WorkloadKind::kKMeans, 3),
                          config, 1, options);
  EXPECT_EQ(r.status, RunStatus::kTimeLimit);
  EXPECT_DOUBLE_EQ(r.seconds, 10.0);
}

TEST(EngineTest, MetricsArePopulated) {
  const auto r = run_config(tuned_config(), WorkloadKind::kTeraSort, 1);
  EXPECT_GT(r.metrics.total_tasks, 0);
  EXPECT_GT(r.metrics.total_waves, 0);
  EXPECT_GT(r.metrics.cpu_seconds, 0.0);
  EXPECT_GT(r.metrics.disk_seconds, 0.0);
  EXPECT_GE(r.metrics.straggler_factor, 1.0);
  EXPECT_EQ(r.stage_seconds.size(), 2u);  // map-sort + reduce-write
}

TEST(EngineTest, OomReportsFailureStage) {
  const auto r = run_config(space().defaults(), WorkloadKind::kPageRank, 1);
  ASSERT_EQ(r.status, RunStatus::kOom);
  EXPECT_FALSE(r.failure_stage.empty());
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_LT(r.seconds, 120.0);  // failures surface quickly
}

TEST(EngineTest, SpeculationTrimsStragglerTail) {
  auto spec_on = tuned_config();
  spec_on[*space().index_of("spark.speculation")] = 1;
  spec_on[*space().index_of("spark.speculation.multiplier")] = 1.1;
  spec_on[*space().index_of("spark.speculation.quantile")] = 0.6;
  const auto off = run_config(tuned_config(), WorkloadKind::kPageRank, 1);
  const auto on = run_config(spec_on, WorkloadKind::kPageRank, 1);
  EXPECT_LT(on.metrics.straggler_factor, off.metrics.straggler_factor);
}

// Parameterized sweep: every workload/dataset simulates to a finite,
// positive, reasonable time under the tuned config.
class EngineSweepTest
    : public ::testing::TestWithParam<std::tuple<WorkloadKind, int>> {};

TEST_P(EngineSweepTest, TunedConfigCompletesInSaneTime) {
  const auto [kind, dataset] = GetParam();
  const auto r = run_config(tuned_config(), kind, dataset);
  ASSERT_EQ(r.status, RunStatus::kOk) << to_string(kind) << dataset;
  EXPECT_GT(r.seconds, 5.0);
  EXPECT_LT(r.seconds, 480.0);  // inside the paper's evaluation cap
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, EngineSweepTest,
    ::testing::Combine(::testing::Values(WorkloadKind::kPageRank,
                                         WorkloadKind::kKMeans,
                                         WorkloadKind::kConnectedComponents,
                                         WorkloadKind::kLogisticRegression,
                                         WorkloadKind::kTeraSort),
                       ::testing::Values(1, 2, 3)));

// ---------------------------------------------------------- objective ----

TEST(ObjectiveTest, CountsEvaluationsAndCost) {
  SparkObjective obj(ClusterSpec{}, make_workload(WorkloadKind::kTeraSort, 1),
                     space(), 42);
  const auto unit = space().encode(tuned_config());
  obj.evaluate(unit);
  obj.evaluate(unit);
  EXPECT_EQ(obj.evaluations(), 2u);
  EXPECT_GT(obj.total_cost_s(), 0.0);
  obj.reset_counters();
  EXPECT_EQ(obj.evaluations(), 0u);
}

TEST(ObjectiveTest, GuardThresholdKillsSlowRuns) {
  SparkObjective obj(ClusterSpec{}, make_workload(WorkloadKind::kKMeans, 3),
                     space(), 42, 480.0, 0.0);
  // Default config on KM-D3 takes far longer than 60 s.
  const auto out = obj.evaluate_decoded(space().defaults(), 60.0);
  EXPECT_TRUE(out.stopped_early);
  EXPECT_DOUBLE_EQ(out.value_s, 60.0);
  EXPECT_DOUBLE_EQ(out.cost_s, 60.0);
}

TEST(ObjectiveTest, FailedRunsAreCheapButPenalized) {
  SparkObjective obj(ClusterSpec{}, make_workload(WorkloadKind::kPageRank, 1),
                     space(), 42, 480.0, 0.0);
  const auto out = obj.evaluate_decoded(space().defaults(), 0.0);
  EXPECT_EQ(out.status, RunStatus::kOom);
  EXPECT_GT(out.value_s, 480.0);   // penalty value above the cap
  EXPECT_LT(out.cost_s, 120.0);    // but the session barely pays for it
}

TEST(ObjectiveTest, NoCapWhenDisabled) {
  SparkObjective obj(ClusterSpec{}, make_workload(WorkloadKind::kKMeans, 3),
                     space(), 42, 480.0, 0.0);
  const auto out =
      obj.evaluate_decoded(space().defaults(), 0.0, /*apply_cap=*/false);
  EXPECT_EQ(out.status, RunStatus::kOk);
  EXPECT_GT(out.value_s, 480.0);  // §5.2 default comparison runs uncapped
}

TEST(ObjectiveTest, NoiseMakesRepeatsDiffer) {
  SparkObjective obj(ClusterSpec{}, make_workload(WorkloadKind::kTeraSort, 1),
                     space(), 42, 480.0, 0.04);
  const auto unit = space().encode(tuned_config());
  const auto a = obj.evaluate(unit);
  const auto b = obj.evaluate(unit);
  EXPECT_NE(a.value_s, b.value_s);
}

}  // namespace
}  // namespace robotune::sparksim
