// Tests for the session trace exporter and the RFHOC-style tuner.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <vector>

#include "sparksim/objective.h"
#include "tuners/random_search.h"
#include "tuners/rfhoc.h"
#include "tuners/session_trace.h"

namespace robotune::tuners {
namespace {

sparksim::SparkObjective make_objective(std::uint64_t seed = 42) {
  return sparksim::SparkObjective(
      sparksim::ClusterSpec{},
      sparksim::make_workload(sparksim::WorkloadKind::kTeraSort, 1),
      sparksim::spark24_config_space(), seed);
}

// ------------------------------------------------------- session trace ----

TEST(SessionTraceTest, CsvHasHeaderAndOneRowPerEvaluation) {
  auto objective = make_objective(1);
  RandomSearch rs;
  const auto result = rs.tune(objective, 12, 3);
  std::stringstream out;
  TraceOptions options;
  options.include_parameters = false;
  const auto rows = write_csv(result, out, options);
  EXPECT_EQ(rows, 12u);
  std::string line;
  std::getline(out, line);
  EXPECT_EQ(line,
            "index,tuner,value_s,cost_s,status,stopped_early,best_so_far");
  int data_lines = 0;
  while (std::getline(out, line)) ++data_lines;
  EXPECT_EQ(data_lines, 12);
}

TEST(SessionTraceTest, ParameterColumnsUseSpaceNames) {
  auto objective = make_objective(2);
  RandomSearch rs;
  const auto result = rs.tune(objective, 3, 5);
  std::stringstream out;
  TraceOptions options;
  options.space = &objective.space();
  write_csv(result, out, options);
  std::string header;
  std::getline(out, header);
  EXPECT_NE(header.find("spark.executor.cores"), std::string::npos);
  EXPECT_NE(header.find("spark.serializer"), std::string::npos);
  // 7 summary columns + 44 parameters = 51 columns.
  EXPECT_EQ(std::count(header.begin(), header.end(), ','), 50);
}

TEST(SessionTraceTest, UnitColumnsWhenNoSpaceGiven) {
  auto objective = make_objective(3);
  RandomSearch rs;
  const auto result = rs.tune(objective, 2, 5);
  std::stringstream out;
  write_csv(result, out);
  std::string header;
  std::getline(out, header);
  EXPECT_NE(header.find(",u0"), std::string::npos);
  EXPECT_NE(header.find(",u43"), std::string::npos);
}

TEST(SessionTraceTest, BestSoFarIsMonotoneInTheCsv) {
  auto objective = make_objective(4);
  RandomSearch rs;
  const auto result = rs.tune(objective, 20, 7);
  std::stringstream out;
  TraceOptions options;
  options.include_parameters = false;
  write_csv(result, out, options);
  std::string line;
  std::getline(out, line);  // header
  double prev = 1e18;
  while (std::getline(out, line)) {
    const auto pos = line.rfind(',');
    if (pos == std::string::npos || pos + 1 >= line.size()) continue;
    const double best = std::stod(line.substr(pos + 1));
    EXPECT_LE(best, prev + 1e-9);
    prev = best;
  }
}

TEST(SessionTraceTest, FileWrapperWritesAndFails) {
  auto objective = make_objective(5);
  RandomSearch rs;
  const auto result = rs.tune(objective, 2, 9);
  EXPECT_TRUE(write_csv_file(result, "/tmp/robotune_trace_test.csv"));
  EXPECT_FALSE(write_csv_file(result, "/nonexistent/dir/trace.csv"));
  std::remove("/tmp/robotune_trace_test.csv");
}

TEST(SessionTraceTest, CsvEscapeQuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("spark.executor.cores"), "spark.executor.cores");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("two\nlines"), "\"two\nlines\"");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(SessionTraceTest, SpecialCharacterFieldsRoundTrip) {
  // A tuner name packing every character class RFC 4180 cares about:
  // commas split fields, quotes terminate them, newlines split records.
  // Unescaped, any one of these corrupts the file.
  TuningResult result;
  result.tuner = "evil,\"tuner\"\nname";
  Evaluation e;
  e.unit = {0.25, 0.75};
  e.value_s = 120.0;
  e.cost_s = 120.0;
  result.history.push_back(e);
  e.value_s = 80.0;
  result.history.push_back(e);
  result.best_index = 1;

  std::stringstream out;
  TraceOptions options;
  options.include_parameters = false;
  EXPECT_EQ(write_csv(result, out, options), 2u);

  std::vector<std::string> fields;
  ASSERT_TRUE(read_csv_record(out, fields));  // header
  ASSERT_EQ(fields.size(), 7u);
  EXPECT_EQ(fields[1], "tuner");
  std::size_t rows = 0;
  while (read_csv_record(out, fields)) {
    ASSERT_EQ(fields.size(), 7u) << "row " << rows;
    EXPECT_EQ(fields[1], result.tuner) << "row " << rows;
    ++rows;
  }
  EXPECT_EQ(rows, 2u);
}

TEST(SessionTraceTest, FailedWriteLeavesNoPartialFile) {
  auto objective = make_objective(5);
  RandomSearch rs;
  const auto result = rs.tune(objective, 2, 9);
  const std::string path = "/nonexistent/dir/trace.csv";
  EXPECT_FALSE(write_csv_file(result, path));
  EXPECT_EQ(std::ifstream(path).good(), false);
  EXPECT_EQ(std::ifstream(path + ".tmp").good(), false);
  // Success replaces the target atomically: no .tmp residue either.
  const std::string good = "/tmp/robotune_trace_atomic_test.csv";
  EXPECT_TRUE(write_csv_file(result, good));
  EXPECT_TRUE(std::ifstream(good).good());
  EXPECT_FALSE(std::ifstream(good + ".tmp").good());
  std::remove(good.c_str());
}

TEST(SessionTraceTest, IncludeParametersFalseOmitsParameterColumns) {
  auto objective = make_objective(5);
  RandomSearch rs;
  const auto result = rs.tune(objective, 4, 9);
  std::stringstream out;
  TraceOptions options;
  options.space = &objective.space();  // ignored without parameters
  options.include_parameters = false;
  write_csv(result, out, options);
  std::vector<std::string> fields;
  std::size_t records = 0;
  while (read_csv_record(out, fields)) {
    EXPECT_EQ(fields.size(), 7u) << "record " << records;
    ++records;
  }
  EXPECT_EQ(records, 5u);  // header + 4 rows
}

// --------------------------------------------------------------- RFHOC ----

TEST(RfhocTest, RespectsBudgetExactly) {
  auto objective = make_objective(6);
  Rfhoc rfhoc;
  const auto result = rfhoc.tune(objective, 40, 11);
  EXPECT_EQ(result.history.size(), 40u);
  EXPECT_EQ(objective.evaluations(), 40u);
  EXPECT_EQ(result.tuner, "RFHOC");
  EXPECT_TRUE(result.found_any());
}

TEST(RfhocTest, TrainFractionSplitsTheBudget) {
  auto objective = make_objective(7);
  RfhocOptions options;
  options.train_fraction = 0.5;
  options.forest_trees = 50;
  options.ga_generations = 5;
  Rfhoc rfhoc(options);
  const auto result = rfhoc.tune(objective, 30, 13);
  EXPECT_EQ(result.history.size(), 30u);
}

TEST(RfhocTest, AllBudgetOnTrainingStillReturns) {
  auto objective = make_objective(8);
  RfhocOptions options;
  options.train_fraction = 0.95;
  options.forest_trees = 30;
  Rfhoc rfhoc(options);
  const auto result = rfhoc.tune(objective, 12, 15);
  EXPECT_EQ(result.history.size(), 12u);
}

TEST(RfhocTest, ValidationPhaseEvaluatesModelFavourites) {
  // The validated candidates (after the training prefix) should, on
  // average, be no worse than the random training samples — the model
  // extracts at least crude signal.
  auto objective = make_objective(9);
  RfhocOptions options;
  options.train_fraction = 0.6;
  options.forest_trees = 100;
  Rfhoc rfhoc(options);
  const auto result = rfhoc.tune(objective, 50, 17);
  double train_sum = 0.0, validate_sum = 0.0;
  int train_n = 0, validate_n = 0;
  for (std::size_t i = 0; i < result.history.size(); ++i) {
    const auto& e = result.history[i];
    if (i < 30) {
      train_sum += e.value_s;
      ++train_n;
    } else {
      validate_sum += e.value_s;
      ++validate_n;
    }
  }
  EXPECT_LE(validate_sum / validate_n, train_sum / train_n * 1.05);
}

TEST(RfhocTest, DeterministicPerSeed) {
  auto a = make_objective(10);
  auto b = make_objective(10);
  Rfhoc r1, r2;
  const auto ra = r1.tune(a, 25, 21);
  const auto rb = r2.tune(b, 25, 21);
  ASSERT_EQ(ra.history.size(), rb.history.size());
  for (std::size_t i = 0; i < ra.history.size(); ++i) {
    EXPECT_EQ(ra.history[i].unit, rb.history[i].unit);
  }
}

}  // namespace
}  // namespace robotune::tuners
