// Tests for the memoized-state persistence layer and the crash-safe
// (v3, CRC-framed) session-journal format.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/error.h"
#include "core/persistence.h"

namespace robotune::core {
namespace {

TEST(PersistenceTest, RoundTripsBothCaches) {
  ParameterSelectionCache selection;
  selection.store("PageRank", {0, 1, 29});
  selection.store("KMeans", {0, 1});
  ConfigMemoizationBuffer memo;
  memo.store("PageRank", {{0.25, 0.5, 0.75}, 123.5});
  memo.store("PageRank", {{0.1, 0.2, 0.3}, 99.25});

  std::stringstream stream;
  const auto written = save_state(selection, memo, stream);
  EXPECT_EQ(written, 4u);

  ParameterSelectionCache selection2;
  ConfigMemoizationBuffer memo2;
  const auto read = load_state(stream, selection2, memo2);
  EXPECT_EQ(read, 4u);
  EXPECT_EQ(*selection2.lookup("PageRank"),
            (std::vector<std::size_t>{0, 1, 29}));
  EXPECT_EQ(*selection2.lookup("KMeans"), (std::vector<std::size_t>{0, 1}));
  const auto best = memo2.best("PageRank", 2);
  ASSERT_EQ(best.size(), 2u);
  EXPECT_DOUBLE_EQ(best[0].value_s, 99.25);
  EXPECT_EQ(best[0].unit, (std::vector<double>{0.1, 0.2, 0.3}));
}

TEST(PersistenceTest, ValuesSurviveWithFullPrecision) {
  ConfigMemoizationBuffer memo;
  ParameterSelectionCache selection;
  memo.store("W", {{0.12345678901234567}, 3.141592653589793});
  std::stringstream stream;
  save_state(selection, memo, stream);
  ConfigMemoizationBuffer memo2;
  ParameterSelectionCache sel2;
  load_state(stream, sel2, memo2);
  const auto best = memo2.best("W", 1);
  EXPECT_DOUBLE_EQ(best[0].value_s, 3.141592653589793);
  EXPECT_DOUBLE_EQ(best[0].unit[0], 0.12345678901234567);
}

TEST(PersistenceTest, EmptyStateRoundTrips) {
  ParameterSelectionCache selection;
  ConfigMemoizationBuffer memo;
  std::stringstream stream;
  EXPECT_EQ(save_state(selection, memo, stream), 0u);
  ParameterSelectionCache sel2;
  ConfigMemoizationBuffer memo2;
  EXPECT_EQ(load_state(stream, sel2, memo2), 0u);
  EXPECT_EQ(sel2.size(), 0u);
}

TEST(PersistenceTest, LoadMergesIntoExistingState) {
  ParameterSelectionCache selection;
  selection.store("Old", {7});
  ConfigMemoizationBuffer memo;
  std::stringstream stream;
  ParameterSelectionCache incoming;
  incoming.store("New", {3});
  ConfigMemoizationBuffer incoming_memo;
  save_state(incoming, incoming_memo, stream);
  load_state(stream, selection, memo);
  EXPECT_TRUE(selection.contains("Old"));
  EXPECT_TRUE(selection.contains("New"));
}

TEST(PersistenceTest, CommentsAndBlankLinesIgnored) {
  std::stringstream stream;
  stream << "robotune-state v1\n\n# a comment\nselection W 1 5\n";
  ParameterSelectionCache selection;
  ConfigMemoizationBuffer memo;
  EXPECT_EQ(load_state(stream, selection, memo), 1u);
  EXPECT_TRUE(selection.contains("W"));
}

TEST(PersistenceTest, BadHeaderThrows) {
  std::stringstream stream;
  stream << "not-a-state-file\n";
  ParameterSelectionCache selection;
  ConfigMemoizationBuffer memo;
  EXPECT_THROW(load_state(stream, selection, memo), InvalidArgument);
}

TEST(PersistenceTest, UnknownRecordThrows) {
  std::stringstream stream;
  stream << "robotune-state v1\nbogus W 1 2\n";
  ParameterSelectionCache selection;
  ConfigMemoizationBuffer memo;
  EXPECT_THROW(load_state(stream, selection, memo), InvalidArgument);
}

TEST(PersistenceTest, MalformedRowThrows) {
  std::stringstream stream;
  stream << "robotune-state v1\nselection W 3 1\n";  // promises 3, gives 1
  ParameterSelectionCache selection;
  ConfigMemoizationBuffer memo;
  EXPECT_THROW(load_state(stream, selection, memo), InvalidArgument);
}

TEST(PersistenceTest, FileHelpersRoundTrip) {
  const std::string path = "/tmp/robotune_persistence_test.state";
  ParameterSelectionCache selection;
  selection.store("W", {1, 2});
  ConfigMemoizationBuffer memo;
  memo.store("W", {{0.5}, 10.0});
  ASSERT_TRUE(save_state_file(selection, memo, path));
  ParameterSelectionCache sel2;
  ConfigMemoizationBuffer memo2;
  ASSERT_TRUE(load_state_file(path, sel2, memo2));
  EXPECT_TRUE(sel2.contains("W"));
  EXPECT_EQ(memo2.size("W"), 1u);
  std::remove(path.c_str());
}

TEST(PersistenceTest, MissingFileReturnsFalse) {
  ParameterSelectionCache selection;
  ConfigMemoizationBuffer memo;
  EXPECT_FALSE(load_state_file("/nonexistent/dir/state", selection, memo));
}

TEST(PersistenceTest, MemoCapacityStillEnforcedAfterLoad) {
  ConfigMemoizationBuffer memo(2);
  ParameterSelectionCache selection;
  std::stringstream stream;
  ConfigMemoizationBuffer source(8);
  for (int i = 0; i < 5; ++i) {
    source.store("W", {{0.1 * i}, 100.0 + i});
  }
  save_state(selection, source, stream);
  ParameterSelectionCache sel2;
  load_state(stream, sel2, memo);
  EXPECT_EQ(memo.size("W"), 2u);  // capacity of the receiving buffer wins
  EXPECT_DOUBLE_EQ(memo.best("W", 1)[0].value_s, 100.0);
}

// ------------------- crash-safe session journal (v3 framing) -------------

/// Wraps a payload in the v3 frame: "<crc:8 hex> <len> <payload>\n".
std::string frame(const std::string& payload) {
  char head[32];
  std::snprintf(head, sizeof(head), "%08x %zu ", crc32(payload),
                payload.size());
  return std::string(head) + payload + "\n";
}

SessionCheckpoint journal_checkpoint() {
  SessionCheckpoint s;
  s.seed = 5;
  s.budget = 20;
  s.workload = "TeraSort";
  s.selected = {0, 1, 29};
  s.selection_seed_draws = 60;
  s.selection_cost_s = 1234.5;
  s.memoized.push_back({{0.12345678901234567, 0.5}, 99.25});
  for (int i = 0; i < 6; ++i) {
    EvalRecord e;
    e.index = static_cast<std::uint64_t>(i);
    e.unit = {0.125 * i, 1.0 - 0.125 * i};
    e.value_s = 100.0 + i;
    e.cost_s = 100.0 + i;
    s.evaluations.push_back(std::move(e));
  }
  // Eval 4 was racer-killed: censored value, partial cost, a matching
  // kill record, and the racing signature the session ran under.
  s.evaluations[4].status = sparksim::RunStatus::kKilled;
  s.evaluations[4].transient = true;
  s.evaluations[4].cost_s = 42.5;
  s.racing_mode = "median";
  s.kill_events.push_back({4, sparksim::KillReason::kMedianRule});
  s.degrade_events.push_back({2, "gp_refit"});
  s.degrade_events.push_back({2, "gp_noise_inflate"});
  s.degrade_events.push_back({4, "fallback_proposal"});
  return s;
}

void expect_prefix_of(const SessionCheckpoint& loaded,
                      const SessionCheckpoint& reference) {
  ASSERT_LE(loaded.evaluations.size(), reference.evaluations.size());
  for (std::size_t i = 0; i < loaded.evaluations.size(); ++i) {
    EXPECT_EQ(loaded.evaluations[i].index, reference.evaluations[i].index);
    EXPECT_EQ(loaded.evaluations[i].unit, reference.evaluations[i].unit);
    EXPECT_EQ(loaded.evaluations[i].value_s,
              reference.evaluations[i].value_s);
  }
  ASSERT_LE(loaded.degrade_events.size(), reference.degrade_events.size());
  for (std::size_t i = 0; i < loaded.degrade_events.size(); ++i) {
    EXPECT_EQ(loaded.degrade_events[i].iter,
              reference.degrade_events[i].iter);
    EXPECT_EQ(loaded.degrade_events[i].rung,
              reference.degrade_events[i].rung);
  }
  ASSERT_LE(loaded.kill_events.size(), reference.kill_events.size());
  for (std::size_t i = 0; i < loaded.kill_events.size(); ++i) {
    EXPECT_EQ(loaded.kill_events[i].index, reference.kill_events[i].index);
    EXPECT_EQ(loaded.kill_events[i].reason,
              reference.kill_events[i].reason);
  }
}

TEST(SessionJournalV3Test, RoundTripsIncludingDegradeEvents) {
  const auto original = journal_checkpoint();
  std::stringstream stream;
  save_session(original, stream);
  // Every record line is CRC-framed.
  std::string text = stream.str();
  std::istringstream lines(text);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "robotune-session v3");
  while (std::getline(lines, line)) {
    ASSERT_GE(line.size(), 12u);
    EXPECT_EQ(line[8], ' ');
  }

  SessionCheckpoint loaded;
  SessionLoadReport report;
  std::istringstream in(text);
  load_session(in, loaded, LoadMode::kStrict, &report);
  EXPECT_EQ(report.version, 3);
  EXPECT_FALSE(report.recovered);
  EXPECT_EQ(report.evaluations, 6u);
  EXPECT_EQ(loaded.workload, "TeraSort");
  ASSERT_EQ(loaded.degrade_events.size(), 3u);
  EXPECT_EQ(loaded.degrade_events[0].iter, 2u);
  EXPECT_EQ(loaded.degrade_events[0].rung, "gp_refit");
  EXPECT_EQ(loaded.degrade_events[2].rung, "fallback_proposal");
  EXPECT_EQ(loaded.racing_mode, "median");
  ASSERT_EQ(loaded.kill_events.size(), 1u);
  EXPECT_EQ(loaded.kill_events[0].index, 4u);
  EXPECT_EQ(loaded.kill_events[0].reason,
            sparksim::KillReason::kMedianRule);
  EXPECT_EQ(loaded.evaluations[4].status, sparksim::RunStatus::kKilled);
  expect_prefix_of(loaded, original);
  EXPECT_EQ(loaded.evaluations.size(), original.evaluations.size());
}

TEST(SessionJournalV3Test, MalformedFieldsThrowWithSourceAndLine) {
  // One case per malformed-field shape the hardened parser must reject.
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"meta abc 20 W", "malformed seed field"},
      {"meta 5 twenty W", "malformed budget field"},
      {"meta 5 20", "missing workload field"},
      {"seeding sideways", "malformed seeding mode"},
      {"selected 3 1", "missing selected index field"},
      {"selected 2 1 2 3", "trailing data"},
      {"selection-draws 1.5", "malformed selection-draws field"},
      {"selection-cost abc", "malformed selection-cost field"},
      {"memo 1.0 2 0.5", "missing memo unit coordinate field"},
      {"eval 0 not-a-status 1 1 0 0 1 1 0.5", "unknown run status"},
      {"eval 0 ok nan-ish 1 0 0 1 1 0.5", "malformed eval value field"},
      {"eval 0 ok 1 1 0 0 1 3 0.5", "missing eval unit coordinate field"},
      {"eval x ok 1 1 0 0 1 1 0.5", "malformed eval index field"},
      {"degrade x gp_refit", "malformed degrade iteration field"},
      {"degrade 2", "missing degrade rung field"},
      {"racing", "missing racing signature field"},
      {"racing median off", "trailing data"},
      {"kill", "missing kill index field"},
      {"kill x deadline", "malformed kill index field"},
      {"kill 0", "missing kill reason field"},
      {"kill 0 bogus-reason", "unknown kill reason"},
      {"kill 0 deadline extra", "trailing data"},
      {"wat 1 2", "unknown record kind"},
  };
  for (const auto& [payload, expected] : cases) {
    std::istringstream in("robotune-session v3\n" + frame(payload));
    SessionCheckpoint s;
    try {
      load_session(in, s, LoadMode::kStrict, nullptr, "journal.ckpt");
      FAIL() << "expected InvalidArgument for payload: " << payload;
    } catch (const InvalidArgument& e) {
      const std::string what = e.what();
      // Errors carry the file and line of the offending record.
      EXPECT_NE(what.find("journal.ckpt:2:"), std::string::npos) << what;
      EXPECT_NE(what.find(expected), std::string::npos)
          << "payload: " << payload << "\nwhat: " << what;
    }
  }
}

TEST(SessionJournalV3Test, RecoverTruncatesAtAMalformedButFramedRecord) {
  // A record whose CRC is intact but whose payload does not parse is
  // still a corruption point: recover keeps everything before it and
  // drops it plus everything after.
  std::istringstream in("robotune-session v3\n" +
                        frame("meta 5 20 W") +
                        frame("eval 0 ok 1 1 0 0 1 1 0.5") +
                        frame("eval 1 ok not-a-number 1 0 0 1 1 0.5") +
                        frame("eval 2 ok 3 3 0 0 1 1 0.5"));
  SessionCheckpoint s;
  SessionLoadReport report;
  load_session(in, s, LoadMode::kRecover, &report);
  EXPECT_TRUE(report.recovered);
  EXPECT_EQ(report.dropped_records, 2u);  // the bad record + the one after
  ASSERT_EQ(s.evaluations.size(), 1u);
  EXPECT_EQ(s.workload, "W");
}

TEST(SessionJournalV3Test, TruncationAtEveryByteRecoversLongestPrefix) {
  const auto reference = journal_checkpoint();
  std::stringstream stream;
  save_session(reference, stream);
  const std::string full = stream.str();

  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    std::istringstream in(full.substr(0, cut));
    SessionCheckpoint loaded;
    SessionLoadReport report;
    // Recover mode must never throw, whatever the cut point.
    ASSERT_NO_THROW(load_session(in, loaded, LoadMode::kRecover, &report))
        << "cut at byte " << cut;
    expect_prefix_of(loaded, reference);
    if (cut == full.size()) {
      EXPECT_EQ(loaded.evaluations.size(), reference.evaluations.size());
      EXPECT_FALSE(report.recovered);
    }
  }
}

TEST(SessionJournalV3Test, BitFlipAtEveryByteIsCaughtByTheChecksum) {
  const auto reference = journal_checkpoint();
  std::stringstream stream;
  save_session(reference, stream);
  const std::string full = stream.str();

  for (std::size_t at = 0; at < full.size(); ++at) {
    std::string flipped = full;
    // Set the high bit: never produces '#', '\n', or a valid frame char,
    // so every flip position is a detectable corruption.
    flipped[at] = static_cast<char>(
        static_cast<unsigned char>(flipped[at]) ^ 0x80u);
    {
      std::istringstream in(flipped);
      SessionCheckpoint loaded;
      EXPECT_THROW(load_session(in, loaded, LoadMode::kStrict),
                   InvalidArgument)
          << "flip at byte " << at;
    }
    {
      std::istringstream in(flipped);
      SessionCheckpoint loaded;
      SessionLoadReport report;
      ASSERT_NO_THROW(
          load_session(in, loaded, LoadMode::kRecover, &report))
          << "flip at byte " << at;
      EXPECT_TRUE(report.recovered) << "flip at byte " << at;
      EXPECT_GE(report.dropped_records, 1u);
      expect_prefix_of(loaded, reference);
      EXPECT_LT(loaded.evaluations.size() + loaded.degrade_events.size(),
                reference.evaluations.size() +
                    reference.degrade_events.size() + 1)
          << "flip at byte " << at;
    }
  }
}

TEST(SessionJournalV3Test, EmptyStreamStrictThrowsRecoverReturnsEmpty) {
  {
    std::istringstream in("");
    SessionCheckpoint s;
    EXPECT_THROW(load_session(in, s, LoadMode::kStrict), InvalidArgument);
  }
  {
    std::istringstream in("");
    SessionCheckpoint s;
    SessionLoadReport report;
    EXPECT_EQ(load_session(in, s, LoadMode::kRecover, &report), 0u);
    EXPECT_TRUE(report.recovered);
    EXPECT_EQ(s.evaluations.size(), 0u);
  }
}

TEST(SessionJournalV2Test, LegacyJournalsStillLoadReadOnly) {
  const std::string v2 =
      "robotune-session v2\n"
      "meta 5 20 TeraSort\n"
      "seeding indexed\n"
      "selected 2 0 29\n"
      "selection-draws 60\n"
      "selection-cost 1234.5\n"
      "memo 99.25 1 0.5\n"
      "eval 0 ok 120.5 120.5 0 0 1 2 0.25 0.75\n"
      "eval 1 time-limit 480 480 1 0 1 2 0.1 0.9\n";
  for (const LoadMode mode : {LoadMode::kStrict, LoadMode::kRecover}) {
    std::istringstream in(v2);
    SessionCheckpoint s;
    SessionLoadReport report;
    EXPECT_EQ(load_session(in, s, mode, &report), 2u);
    EXPECT_EQ(report.version, 2);
    EXPECT_FALSE(report.recovered);
    EXPECT_EQ(s.workload, "TeraSort");
    EXPECT_TRUE(s.indexed_seeding);
    EXPECT_EQ(s.selected, (std::vector<std::size_t>{0, 29}));
    ASSERT_EQ(s.evaluations.size(), 2u);
    EXPECT_EQ(s.evaluations[1].index, 1u);
    EXPECT_TRUE(s.evaluations[1].stopped_early);
  }
}

TEST(SessionJournalV2Test, LegacyCorruptionThrowsEvenInRecoverMode) {
  // Unframed journals carry no checksum, so corruption cannot be
  // reliably detected — recover mode refuses to guess.
  const std::string v2 =
      "robotune-session v2\n"
      "meta 5 20 TeraSort\n"
      "eval 0 ok 120.5 oops 0 0 1 1 0.25\n";
  std::istringstream in(v2);
  SessionCheckpoint s;
  EXPECT_THROW(load_session(in, s, LoadMode::kRecover), InvalidArgument);
}

TEST(CanonicalizeJournalTest, PrunesKillEventsPastTheReplayablePrefix) {
  auto s = journal_checkpoint();
  // A crash mid-batch: evals 0..2 and 5 completed, 3-4 were in flight.
  // Kill events for the lost evaluations must be pruned with them.
  s.evaluations.erase(s.evaluations.begin() + 3,
                      s.evaluations.begin() + 5);
  s.kill_events.push_back({5, sparksim::KillReason::kDeadline});
  const std::size_t dropped = canonicalize_journal(s);
  EXPECT_EQ(dropped, 1u);  // eval 5 fell past the gap
  ASSERT_EQ(s.evaluations.size(), 3u);
  // Both kill events (evals 4 and 5) referenced dropped evaluations.
  EXPECT_TRUE(s.kill_events.empty());

  // Kill events inside the kept prefix survive canonicalization.
  auto kept = journal_checkpoint();
  std::swap(kept.evaluations[0], kept.evaluations[5]);  // completion order
  EXPECT_EQ(canonicalize_journal(kept), 0u);
  ASSERT_EQ(kept.kill_events.size(), 1u);
  EXPECT_EQ(kept.kill_events[0].index, 4u);
}

TEST(SessionJournalV3Test, FsyncPolicyRoundTripsOnDisk) {
  const std::string path = "/tmp/robotune_persistence_fsync_test.ckpt";
  std::remove(path.c_str());
  const auto original = journal_checkpoint();
  ASSERT_TRUE(save_session_file(original, path, SyncPolicy::kFsync));
  SessionCheckpoint loaded;
  SessionLoadReport report;
  ASSERT_TRUE(load_session_file(path, loaded, LoadMode::kRecover, &report));
  EXPECT_FALSE(report.recovered);
  expect_prefix_of(loaded, original);
  EXPECT_EQ(loaded.evaluations.size(), original.evaluations.size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace robotune::core
