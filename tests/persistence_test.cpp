// Tests for the memoized-state persistence layer.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/error.h"
#include "core/persistence.h"

namespace robotune::core {
namespace {

TEST(PersistenceTest, RoundTripsBothCaches) {
  ParameterSelectionCache selection;
  selection.store("PageRank", {0, 1, 29});
  selection.store("KMeans", {0, 1});
  ConfigMemoizationBuffer memo;
  memo.store("PageRank", {{0.25, 0.5, 0.75}, 123.5});
  memo.store("PageRank", {{0.1, 0.2, 0.3}, 99.25});

  std::stringstream stream;
  const auto written = save_state(selection, memo, stream);
  EXPECT_EQ(written, 4u);

  ParameterSelectionCache selection2;
  ConfigMemoizationBuffer memo2;
  const auto read = load_state(stream, selection2, memo2);
  EXPECT_EQ(read, 4u);
  EXPECT_EQ(*selection2.lookup("PageRank"),
            (std::vector<std::size_t>{0, 1, 29}));
  EXPECT_EQ(*selection2.lookup("KMeans"), (std::vector<std::size_t>{0, 1}));
  const auto best = memo2.best("PageRank", 2);
  ASSERT_EQ(best.size(), 2u);
  EXPECT_DOUBLE_EQ(best[0].value_s, 99.25);
  EXPECT_EQ(best[0].unit, (std::vector<double>{0.1, 0.2, 0.3}));
}

TEST(PersistenceTest, ValuesSurviveWithFullPrecision) {
  ConfigMemoizationBuffer memo;
  ParameterSelectionCache selection;
  memo.store("W", {{0.12345678901234567}, 3.141592653589793});
  std::stringstream stream;
  save_state(selection, memo, stream);
  ConfigMemoizationBuffer memo2;
  ParameterSelectionCache sel2;
  load_state(stream, sel2, memo2);
  const auto best = memo2.best("W", 1);
  EXPECT_DOUBLE_EQ(best[0].value_s, 3.141592653589793);
  EXPECT_DOUBLE_EQ(best[0].unit[0], 0.12345678901234567);
}

TEST(PersistenceTest, EmptyStateRoundTrips) {
  ParameterSelectionCache selection;
  ConfigMemoizationBuffer memo;
  std::stringstream stream;
  EXPECT_EQ(save_state(selection, memo, stream), 0u);
  ParameterSelectionCache sel2;
  ConfigMemoizationBuffer memo2;
  EXPECT_EQ(load_state(stream, sel2, memo2), 0u);
  EXPECT_EQ(sel2.size(), 0u);
}

TEST(PersistenceTest, LoadMergesIntoExistingState) {
  ParameterSelectionCache selection;
  selection.store("Old", {7});
  ConfigMemoizationBuffer memo;
  std::stringstream stream;
  ParameterSelectionCache incoming;
  incoming.store("New", {3});
  ConfigMemoizationBuffer incoming_memo;
  save_state(incoming, incoming_memo, stream);
  load_state(stream, selection, memo);
  EXPECT_TRUE(selection.contains("Old"));
  EXPECT_TRUE(selection.contains("New"));
}

TEST(PersistenceTest, CommentsAndBlankLinesIgnored) {
  std::stringstream stream;
  stream << "robotune-state v1\n\n# a comment\nselection W 1 5\n";
  ParameterSelectionCache selection;
  ConfigMemoizationBuffer memo;
  EXPECT_EQ(load_state(stream, selection, memo), 1u);
  EXPECT_TRUE(selection.contains("W"));
}

TEST(PersistenceTest, BadHeaderThrows) {
  std::stringstream stream;
  stream << "not-a-state-file\n";
  ParameterSelectionCache selection;
  ConfigMemoizationBuffer memo;
  EXPECT_THROW(load_state(stream, selection, memo), InvalidArgument);
}

TEST(PersistenceTest, UnknownRecordThrows) {
  std::stringstream stream;
  stream << "robotune-state v1\nbogus W 1 2\n";
  ParameterSelectionCache selection;
  ConfigMemoizationBuffer memo;
  EXPECT_THROW(load_state(stream, selection, memo), InvalidArgument);
}

TEST(PersistenceTest, MalformedRowThrows) {
  std::stringstream stream;
  stream << "robotune-state v1\nselection W 3 1\n";  // promises 3, gives 1
  ParameterSelectionCache selection;
  ConfigMemoizationBuffer memo;
  EXPECT_THROW(load_state(stream, selection, memo), InvalidArgument);
}

TEST(PersistenceTest, FileHelpersRoundTrip) {
  const std::string path = "/tmp/robotune_persistence_test.state";
  ParameterSelectionCache selection;
  selection.store("W", {1, 2});
  ConfigMemoizationBuffer memo;
  memo.store("W", {{0.5}, 10.0});
  ASSERT_TRUE(save_state_file(selection, memo, path));
  ParameterSelectionCache sel2;
  ConfigMemoizationBuffer memo2;
  ASSERT_TRUE(load_state_file(path, sel2, memo2));
  EXPECT_TRUE(sel2.contains("W"));
  EXPECT_EQ(memo2.size("W"), 1u);
  std::remove(path.c_str());
}

TEST(PersistenceTest, MissingFileReturnsFalse) {
  ParameterSelectionCache selection;
  ConfigMemoizationBuffer memo;
  EXPECT_FALSE(load_state_file("/nonexistent/dir/state", selection, memo));
}

TEST(PersistenceTest, MemoCapacityStillEnforcedAfterLoad) {
  ConfigMemoizationBuffer memo(2);
  ParameterSelectionCache selection;
  std::stringstream stream;
  ConfigMemoizationBuffer source(8);
  for (int i = 0; i < 5; ++i) {
    source.store("W", {{0.1 * i}, 100.0 + i});
  }
  save_state(selection, source, stream);
  ParameterSelectionCache sel2;
  load_state(stream, sel2, memo);
  EXPECT_EQ(memo.size("W"), 2u);  // capacity of the receiving buffer wins
  EXPECT_DOUBLE_EQ(memo.best("W", 1)[0].value_s, 100.0);
}

}  // namespace
}  // namespace robotune::core
