// Tests for src/core: memoization, parameter selection, the BO engine,
// and the ROBOTune framework.
#include <gtest/gtest.h>

#include <cmath>

#include "core/bo_engine.h"
#include "core/memoization.h"
#include "core/parameter_selection.h"
#include "core/robotune.h"
#include "sparksim/objective.h"

namespace robotune::core {
namespace {

using sparksim::WorkloadKind;

sparksim::SparkObjective make_objective(WorkloadKind kind = WorkloadKind::kTeraSort,
                                        int dataset = 1,
                                        std::uint64_t seed = 42) {
  return sparksim::SparkObjective(sparksim::ClusterSpec{},
                                  sparksim::make_workload(kind, dataset),
                                  sparksim::spark24_config_space(), seed);
}

// Fast selection settings for tests.
SelectionOptions fast_selection() {
  SelectionOptions opt;
  opt.generic_samples = 60;
  opt.forest_trees = 80;
  opt.permutation_repeats = 3;
  return opt;
}

// ------------------------------------------------------- memoization ----

TEST(SelectionCacheTest, StoreAndLookup) {
  ParameterSelectionCache cache;
  EXPECT_FALSE(cache.contains("PageRank"));
  cache.store("PageRank", {1, 5, 9});
  EXPECT_TRUE(cache.contains("PageRank"));
  const auto hit = cache.lookup("PageRank");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, (std::vector<std::size_t>{1, 5, 9}));
  EXPECT_FALSE(cache.lookup("KMeans").has_value());
}

TEST(SelectionCacheTest, StoreOverwrites) {
  ParameterSelectionCache cache;
  cache.store("W", {1});
  cache.store("W", {2, 3});
  EXPECT_EQ(cache.lookup("W")->size(), 2u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(MemoBufferTest, KeepsBestConfigsSorted) {
  ConfigMemoizationBuffer buffer(3);
  buffer.store("W", {{0.1}, 300.0});
  buffer.store("W", {{0.2}, 100.0});
  buffer.store("W", {{0.3}, 200.0});
  buffer.store("W", {{0.4}, 50.0});  // evicts the 300 s entry
  const auto best = buffer.best("W", 4);
  ASSERT_EQ(best.size(), 3u);
  EXPECT_DOUBLE_EQ(best[0].value_s, 50.0);
  EXPECT_DOUBLE_EQ(best[1].value_s, 100.0);
  EXPECT_DOUBLE_EQ(best[2].value_s, 200.0);
}

TEST(MemoBufferTest, BestRespectsK) {
  ConfigMemoizationBuffer buffer;
  buffer.store("W", {{0.1}, 1.0});
  buffer.store("W", {{0.2}, 2.0});
  EXPECT_EQ(buffer.best("W", 1).size(), 1u);
  EXPECT_TRUE(buffer.best("other", 4).empty());
  EXPECT_FALSE(buffer.contains("other"));
}

// ------------------------------------------------ parameter selection ----

TEST(FeatureGroupsTest, CoversEveryParameterExactlyOnce) {
  const auto space = sparksim::spark24_config_space();
  const auto groups = build_feature_groups(
      space, sparksim::spark24_joint_parameter_groups());
  std::vector<int> cover(space.size(), 0);
  for (const auto& g : groups) {
    for (std::size_t f : g.features) cover[f]++;
  }
  for (std::size_t i = 0; i < space.size(); ++i) {
    EXPECT_EQ(cover[i], 1) << space.spec(i).name;
  }
}

TEST(FeatureGroupsTest, UnknownNameThrows) {
  const auto space = sparksim::spark24_config_space();
  EXPECT_THROW(build_feature_groups(space, {{"spark.bogus"}}),
               InvalidArgument);
}

TEST(FeatureGroupsTest, DuplicateMembershipThrows) {
  const auto space = sparksim::spark24_config_space();
  EXPECT_THROW(
      build_feature_groups(space, {{"spark.executor.cores"},
                                   {"spark.executor.cores"}}),
      InvalidArgument);
}

TEST(SelectionTest, FromSamplesFindsPlantedSignal) {
  // Synthetic objective over the real space: time depends only on
  // executor cores and serializer.
  const auto space = sparksim::spark24_config_space();
  const auto cores = *space.index_of("spark.executor.cores");
  const auto ser = *space.index_of("spark.serializer");
  Rng rng(3);
  std::vector<std::vector<double>> units;
  std::vector<double> values;
  for (int i = 0; i < 150; ++i) {
    std::vector<double> u(space.size());
    for (auto& v : u) v = rng.uniform();
    units.push_back(u);
    values.push_back(100.0 + 200.0 * u[cores] + 80.0 * (u[ser] > 0.5) +
                     rng.normal(0, 2.0));
  }
  SelectionOptions opt = fast_selection();
  opt.always_selected_groups.clear();
  const auto report = select_parameters_from_samples(
      space, units, values, sparksim::spark24_joint_parameter_groups(), opt);
  EXPECT_GT(report.oob_r2, 0.7);
  // Both planted parameters selected (cores arrives via its joint group).
  EXPECT_NE(std::find(report.selected.begin(), report.selected.end(), cores),
            report.selected.end());
  EXPECT_NE(std::find(report.selected.begin(), report.selected.end(), ser),
            report.selected.end());
}

TEST(SelectionTest, PinnedGroupAlwaysIncluded) {
  const auto space = sparksim::spark24_config_space();
  const auto cores = *space.index_of("spark.executor.cores");
  const auto memory = *space.index_of("spark.executor.memory.mb");
  Rng rng(4);
  std::vector<std::vector<double>> units;
  std::vector<double> values;
  // Pure noise: nothing is actually important.
  for (int i = 0; i < 80; ++i) {
    std::vector<double> u(space.size());
    for (auto& v : u) v = rng.uniform();
    units.push_back(u);
    values.push_back(rng.normal(100, 10));
  }
  const auto report = select_parameters_from_samples(
      space, units, values, sparksim::spark24_joint_parameter_groups(),
      fast_selection());
  EXPECT_NE(std::find(report.selected.begin(), report.selected.end(), cores),
            report.selected.end());
  EXPECT_NE(std::find(report.selected.begin(), report.selected.end(), memory),
            report.selected.end());
}

TEST(SelectionTest, MinGroupsFloorExtendsSmallSelections) {
  const auto space = sparksim::spark24_config_space();
  Rng rng(9);
  std::vector<std::vector<double>> units;
  std::vector<double> values;
  // Pure noise: nothing clears the threshold, so the floor drives the size.
  for (int i = 0; i < 80; ++i) {
    std::vector<double> u(space.size());
    for (auto& v : u) v = rng.uniform();
    units.push_back(u);
    values.push_back(rng.normal(100, 5));
  }
  SelectionOptions opt = fast_selection();
  opt.min_groups = 6;
  opt.always_selected_groups.clear();
  const auto report = select_parameters_from_samples(
      space, units, values, sparksim::spark24_joint_parameter_groups(), opt);
  // At least 6 groups' worth of parameters (groups may span several).
  EXPECT_GE(report.selected.size(), 6u);
  SelectionOptions none = fast_selection();
  none.min_groups = 0;
  none.always_selected_groups.clear();
  const auto bare = select_parameters_from_samples(
      space, units, values, sparksim::spark24_joint_parameter_groups(), none);
  EXPECT_LE(bare.selected.size(), report.selected.size());
}

TEST(SelectionTest, EndToEndSelectionOnSimulator) {
  auto objective = make_objective(WorkloadKind::kPageRank, 1, 7);
  const auto report = select_parameters(
      objective, sparksim::spark24_joint_parameter_groups(),
      fast_selection());
  EXPECT_EQ(report.evaluations.size(), 60u);
  EXPECT_GT(report.sampling_cost_s, 0.0);
  EXPECT_FALSE(report.selected.empty());
  EXPECT_FALSE(report.importances.empty());
  // Importances sorted descending.
  for (std::size_t i = 1; i < report.importances.size(); ++i) {
    EXPECT_GE(report.importances[i - 1].mean_drop,
              report.importances[i].mean_drop);
  }
}

TEST(SelectionTest, TooFewSamplesThrows) {
  const auto space = sparksim::spark24_config_space();
  std::vector<std::vector<double>> units(3,
                                         std::vector<double>(space.size()));
  std::vector<double> values(3, 1.0);
  EXPECT_THROW(select_parameters_from_samples(
                   space, units, values,
                   sparksim::spark24_joint_parameter_groups(), {}),
               InvalidArgument);
}

// ----------------------------------------------------------- BoEngine ----

std::vector<std::size_t> small_selection(const sparksim::ConfigSpace& space) {
  return {*space.index_of("spark.executor.cores"),
          *space.index_of("spark.executor.memory.mb"),
          *space.index_of("spark.cores.max"),
          *space.index_of("spark.default.parallelism")};
}

TEST(BoEngineTest, ProjectExpandRoundTrip) {
  const auto space = sparksim::spark24_config_space();
  BoOptions options;
  options.budget = 25;
  options.initial_samples = 10;
  BoEngine engine(small_selection(space), space.default_unit(), options);
  std::vector<double> sub = {0.25, 0.5, 0.75, 0.1};
  const auto full = engine.expand(sub);
  EXPECT_EQ(full.size(), space.size());
  const auto back = engine.project(full);
  EXPECT_EQ(back, sub);
  // Non-selected coordinates remain at the base.
  const auto base = space.default_unit();
  const auto ser = *space.index_of("spark.serializer");
  EXPECT_DOUBLE_EQ(full[ser], base[ser]);
}

TEST(BoEngineTest, RunsWithinBudget) {
  const auto space = sparksim::spark24_config_space();
  auto objective = make_objective(WorkloadKind::kTeraSort, 1, 9);
  BoOptions options;
  options.budget = 30;
  options.initial_samples = 10;
  options.hyperfit_every = 10;
  BoEngine engine(small_selection(space), space.default_unit(), options);
  const auto result = engine.run(objective);
  EXPECT_EQ(result.tuning.history.size(), 30u);
  EXPECT_EQ(result.iterations_run, 20);
  EXPECT_EQ(result.chosen_acquisitions.size(), 20u);
  EXPECT_EQ(result.hedge_gains.size(), 3u);
  EXPECT_TRUE(result.tuning.found_any());
}

TEST(BoEngineTest, MemoizedConfigsSeedTheInitialSet) {
  const auto space = sparksim::spark24_config_space();
  auto objective = make_objective(WorkloadKind::kTeraSort, 1, 10);
  BoOptions options;
  options.budget = 12;
  options.initial_samples = 8;
  options.memoized_in_initial = 2;
  BoEngine engine(small_selection(space), space.default_unit(), options);
  std::vector<MemoizedConfig> memo;
  auto good = space.default_unit();
  good[*space.index_of("spark.executor.cores")] = 0.33;
  memo.push_back({good, 100.0});
  memo.push_back({good, 110.0});
  const auto result = engine.run(objective, memo);
  // The first two evaluated configurations are the memoized ones.
  EXPECT_NEAR(result.tuning.history[0].unit[*space.index_of(
                  "spark.executor.cores")],
              0.33, 1e-12);
}

TEST(BoEngineTest, EarlyStoppingCutsTheBudget) {
  const auto space = sparksim::spark24_config_space();
  auto objective = make_objective(WorkloadKind::kTeraSort, 1, 11);
  BoOptions options;
  options.budget = 60;
  options.initial_samples = 10;
  options.early_stop_patience = 3;
  options.early_stop_epsilon = 0.5;  // essentially unattainable improvement
  options.hyperfit_every = 10;
  BoEngine engine(small_selection(space), space.default_unit(), options);
  const auto result = engine.run(objective);
  EXPECT_TRUE(result.early_stopped);
  EXPECT_LT(result.tuning.history.size(), 60u);
}

TEST(BoEngineTest, ObserverSeesEveryIteration) {
  const auto space = sparksim::spark24_config_space();
  auto objective = make_objective(WorkloadKind::kTeraSort, 1, 12);
  BoOptions options;
  options.budget = 15;
  options.initial_samples = 10;
  options.hyperfit_every = 5;
  BoEngine engine(small_selection(space), space.default_unit(), options);
  int calls = 0;
  const auto result = engine.run(
      objective, {}, [&](const BoObserverInfo& info) {
        EXPECT_EQ(info.iteration, calls);
        EXPECT_NE(info.gp, nullptr);
        EXPECT_TRUE(info.gp->trained());
        EXPECT_NE(info.choice, nullptr);
        ++calls;
      });
  EXPECT_EQ(calls, 5);
}

TEST(BoEngineTest, InvalidConfigurationsThrow) {
  const auto space = sparksim::spark24_config_space();
  BoOptions options;
  EXPECT_THROW(BoEngine({}, space.default_unit(), options), InvalidArgument);
  EXPECT_THROW(BoEngine({999}, space.default_unit(), options),
               InvalidArgument);
  options.budget = 5;
  options.initial_samples = 10;
  EXPECT_THROW(BoEngine({0}, space.default_unit(), options), InvalidArgument);
}

// ------------------------------------------------------------ RoboTune ----

RoboTuneOptions fast_robotune() {
  RoboTuneOptions options;
  options.selection = SelectionOptions{};
  options.selection.generic_samples = 50;
  options.selection.forest_trees = 60;
  options.selection.permutation_repeats = 2;
  options.bo.initial_samples = 10;
  options.bo.hyperfit_every = 10;
  return options;
}

TEST(RoboTuneTest, EndToEndSessionProducesReport) {
  RoboTune tuner(fast_robotune());
  auto objective = make_objective(WorkloadKind::kTeraSort, 1, 13);
  const auto report = tuner.tune_report(objective, 25, 5);
  EXPECT_FALSE(report.selection_cache_hit);
  EXPECT_FALSE(report.used_memoized_configs);
  EXPECT_GT(report.selection_cost_s, 0.0);
  EXPECT_FALSE(report.selected.empty());
  EXPECT_EQ(report.tuning.history.size(), 25u);
  EXPECT_EQ(report.tuning.tuner, "ROBOTune");
  EXPECT_TRUE(report.tuning.found_any());
}

TEST(RoboTuneTest, SecondSessionHitsCachesAndMemoizes) {
  RoboTune tuner(fast_robotune());
  auto first = make_objective(WorkloadKind::kTeraSort, 1, 14);
  const auto r1 = tuner.tune_report(first, 20, 5);
  // Same workload, different dataset: cache hit + memoized configs.
  auto second = make_objective(WorkloadKind::kTeraSort, 2, 15);
  const auto r2 = tuner.tune_report(second, 20, 6);
  EXPECT_TRUE(r2.selection_cache_hit);
  EXPECT_TRUE(r2.used_memoized_configs);
  EXPECT_DOUBLE_EQ(r2.selection_cost_s, 0.0);
  EXPECT_EQ(r2.selected, r1.selected);
}

TEST(RoboTuneTest, DifferentWorkloadsUseSeparateCaches) {
  RoboTune tuner(fast_robotune());
  auto ts = make_objective(WorkloadKind::kTeraSort, 1, 16);
  tuner.tune_report(ts, 20, 5);
  auto km = make_objective(WorkloadKind::kKMeans, 1, 17);
  const auto r = tuner.tune_report(km, 20, 5);
  EXPECT_FALSE(r.selection_cache_hit);
  EXPECT_FALSE(r.used_memoized_configs);
}

TEST(RoboTuneTest, MemoBufferFillsAfterSession) {
  RoboTune tuner(fast_robotune());
  auto objective = make_objective(WorkloadKind::kTeraSort, 1, 18);
  tuner.tune_report(objective, 20, 5);
  EXPECT_GE(tuner.memo_buffer().size("TeraSort"), 1u);
  EXPECT_TRUE(tuner.selection_cache().contains("TeraSort"));
}

TEST(RoboTuneTest, TunerInterfaceMatchesReport) {
  RoboTune tuner(fast_robotune());
  auto objective = make_objective(WorkloadKind::kTeraSort, 1, 19);
  const auto result = tuner.tune(objective, 22, 5);
  EXPECT_EQ(result.history.size(), 22u);
  EXPECT_EQ(tuner.name(), "ROBOTune");
}

TEST(RoboTuneTest, SelectedSetAlwaysContainsExecutorSize) {
  RoboTune tuner(fast_robotune());
  const auto space = sparksim::spark24_config_space();
  auto objective = make_objective(WorkloadKind::kPageRank, 1, 20);
  const auto report = tuner.tune_report(objective, 20, 5);
  const auto cores = *space.index_of("spark.executor.cores");
  const auto memory = *space.index_of("spark.executor.memory.mb");
  EXPECT_NE(std::find(report.selected.begin(), report.selected.end(), cores),
            report.selected.end());
  EXPECT_NE(std::find(report.selected.begin(), report.selected.end(), memory),
            report.selected.end());
}

}  // namespace
}  // namespace robotune::core
