// Tests for tuning-session checkpoints: serialization round-trips and
// the kill-anytime resume guarantee — a session interrupted mid-budget
// and resumed from its journal finishes with the exact history, best
// configuration, and search cost of a never-interrupted run.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/error.h"
#include "core/persistence.h"
#include "core/robotune.h"
#include "sparksim/objective.h"

namespace robotune::core {
namespace {

using sparksim::RunStatus;
using sparksim::WorkloadKind;

sparksim::SparkObjective make_objective(std::uint64_t seed = 42) {
  return sparksim::SparkObjective(sparksim::ClusterSpec{},
                                  sparksim::make_workload(
                                      WorkloadKind::kTeraSort, 1),
                                  sparksim::spark24_config_space(), seed);
}

RoboTuneOptions fast_robotune() {
  RoboTuneOptions options;
  options.selection.generic_samples = 50;
  options.selection.forest_trees = 60;
  options.selection.permutation_repeats = 2;
  options.bo.initial_samples = 10;
  options.bo.hyperfit_every = 10;
  return options;
}

SessionCheckpoint sample_checkpoint() {
  SessionCheckpoint s;
  s.seed = 5;
  s.budget = 20;
  s.workload = "TeraSort";
  s.selected = {0, 1, 29};
  s.selection_seed_draws = 60;
  s.selection_cost_s = 1234.5;
  s.memoized.push_back({{0.12345678901234567, 0.5}, 99.25});
  EvalRecord ok;
  ok.unit = {0.25, 0.75};
  ok.value_s = 120.5;
  ok.cost_s = 120.5;
  s.evaluations.push_back(ok);
  EvalRecord stopped;
  stopped.unit = {0.1, 0.9};
  stopped.value_s = 480.0;
  stopped.cost_s = 480.0;
  stopped.status = RunStatus::kTimeLimit;
  stopped.stopped_early = true;
  s.evaluations.push_back(stopped);
  EvalRecord flaky;
  flaky.unit = {0.3, 0.4};
  flaky.value_s = 480.0;
  flaky.cost_s = 733.25;
  flaky.status = RunStatus::kExecutorLost;
  flaky.transient = true;
  flaky.attempts = 3;
  s.evaluations.push_back(flaky);
  return s;
}

void expect_checkpoints_equal(const SessionCheckpoint& a,
                              const SessionCheckpoint& b) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.budget, b.budget);
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.selected, b.selected);
  EXPECT_EQ(a.selection_seed_draws, b.selection_seed_draws);
  EXPECT_DOUBLE_EQ(a.selection_cost_s, b.selection_cost_s);
  ASSERT_EQ(a.memoized.size(), b.memoized.size());
  for (std::size_t i = 0; i < a.memoized.size(); ++i) {
    EXPECT_EQ(a.memoized[i].unit, b.memoized[i].unit);
    EXPECT_DOUBLE_EQ(a.memoized[i].value_s, b.memoized[i].value_s);
  }
  ASSERT_EQ(a.evaluations.size(), b.evaluations.size());
  for (std::size_t i = 0; i < a.evaluations.size(); ++i) {
    const auto& x = a.evaluations[i];
    const auto& y = b.evaluations[i];
    EXPECT_EQ(x.unit, y.unit) << i;  // full precision survives the file
    EXPECT_EQ(x.value_s, y.value_s) << i;
    EXPECT_EQ(x.cost_s, y.cost_s) << i;
    EXPECT_EQ(x.status, y.status) << i;
    EXPECT_EQ(x.stopped_early, y.stopped_early) << i;
    EXPECT_EQ(x.transient, y.transient) << i;
    EXPECT_EQ(x.attempts, y.attempts) << i;
  }
}

void expect_results_equal(const tuners::TuningResult& a,
                          const tuners::TuningResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].unit, b.history[i].unit) << "evaluation " << i;
    EXPECT_EQ(a.history[i].value_s, b.history[i].value_s) << i;
    EXPECT_EQ(a.history[i].cost_s, b.history[i].cost_s) << i;
    EXPECT_EQ(a.history[i].status, b.history[i].status) << i;
    EXPECT_EQ(a.history[i].attempts, b.history[i].attempts) << i;
  }
  EXPECT_EQ(a.best_index, b.best_index);
  EXPECT_DOUBLE_EQ(a.search_cost_s, b.search_cost_s);
}

// ------------------------------------------------- session round trip ----

TEST(SessionCheckpointTest, RoundTripsThroughStream) {
  const auto original = sample_checkpoint();
  std::stringstream stream;
  EXPECT_EQ(save_session(original, stream), 3u);
  SessionCheckpoint loaded;
  EXPECT_EQ(load_session(stream, loaded), 3u);
  expect_checkpoints_equal(original, loaded);
}

TEST(SessionCheckpointTest, EveryRunStatusSurvivesTheJournal) {
  SessionCheckpoint s;
  s.workload = "W";
  for (RunStatus status : sparksim::all_run_statuses()) {
    EvalRecord e;
    e.unit = {0.5};
    e.status = status;
    s.evaluations.push_back(e);
  }
  std::stringstream stream;
  save_session(s, stream);
  SessionCheckpoint loaded;
  load_session(stream, loaded);
  ASSERT_EQ(loaded.evaluations.size(), sparksim::all_run_statuses().size());
  for (std::size_t i = 0; i < loaded.evaluations.size(); ++i) {
    EXPECT_EQ(loaded.evaluations[i].status, sparksim::all_run_statuses()[i]);
  }
}

TEST(SessionCheckpointTest, LoadReplacesExistingState) {
  std::stringstream stream;
  save_session(sample_checkpoint(), stream);
  SessionCheckpoint target;
  target.workload = "Stale";
  target.evaluations.resize(7);
  load_session(stream, target);
  EXPECT_EQ(target.workload, "TeraSort");
  EXPECT_EQ(target.evaluations.size(), 3u);
}

TEST(SessionCheckpointTest, MalformedInputThrows) {
  SessionCheckpoint s;
  {
    std::stringstream stream;
    stream << "robotune-state v1\n";  // state header, not a session
    EXPECT_THROW(load_session(stream, s), InvalidArgument);
  }
  {
    std::stringstream stream;
    stream << "robotune-session v1\nbogus 1 2\n";
    EXPECT_THROW(load_session(stream, s), InvalidArgument);
  }
  {
    std::stringstream stream;
    stream << "robotune-session v1\n"
              "eval not-a-status 1.0 1.0 0 0 1 1 0.5\n";
    EXPECT_THROW(load_session(stream, s), InvalidArgument);
  }
  {
    std::stringstream stream;
    stream << "robotune-session v1\n"
              "eval ok 1.0 1.0 0 0 1 3 0.5\n";  // promises 3 dims, gives 1
    EXPECT_THROW(load_session(stream, s), InvalidArgument);
  }
}

TEST(SessionCheckpointTest, FileHelpersRoundTripAtomically) {
  const std::string path = "/tmp/robotune_session_test.journal";
  const auto original = sample_checkpoint();
  ASSERT_TRUE(save_session_file(original, path));
  // The temp file of the write-then-rename protocol must be gone.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  SessionCheckpoint loaded;
  ASSERT_TRUE(load_session_file(path, loaded));
  expect_checkpoints_equal(original, loaded);
  std::remove(path.c_str());
  EXPECT_FALSE(load_session_file(path, loaded));
}

// ---------------------------------------------------- resume guarantee ----

/// Thrown by the flush hook to emulate a hard kill mid-session.
struct SimulatedKill : std::runtime_error {
  SimulatedKill() : std::runtime_error("killed") {}
};

TEST(ResumeTest, JournalingDoesNotPerturbTheSearch) {
  auto plain_objective = make_objective(13);
  RoboTune plain(fast_robotune());
  const auto baseline = plain.tune_report(plain_objective, 20, 5);

  auto journaled_objective = make_objective(13);
  RoboTune journaled(fast_robotune());
  SessionLog session;  // no flush: journal kept in memory only
  const auto logged =
      journaled.tune_report(journaled_objective, 20, 5, nullptr, &session);
  expect_results_equal(baseline.tuning, logged.tuning);
  EXPECT_EQ(session.state.evaluations.size(), 20u);
  EXPECT_EQ(session.state.selected, baseline.selected);
}

TEST(ResumeTest, TruncatedJournalResumesIdentically) {
  auto full_objective = make_objective(13);
  RoboTune full_tuner(fast_robotune());
  SessionLog full_session;
  const auto uninterrupted =
      full_tuner.tune_report(full_objective, 20, 5, nullptr, &full_session);

  // Resume from several interruption points: before any evaluation, mid
  // initial design, and mid BO loop (initial_samples = 10).
  for (std::size_t kept : {0u, 6u, 14u}) {
    SessionLog resumed_session;
    resumed_session.state = full_session.state;
    resumed_session.state.evaluations.resize(kept);
    auto resumed_objective = make_objective(13);
    RoboTune resumed_tuner(fast_robotune());
    const auto resumed = resumed_tuner.tune_report(resumed_objective, 20, 5,
                                                   nullptr, &resumed_session);
    expect_results_equal(uninterrupted.tuning, resumed.tuning);
    EXPECT_EQ(resumed.selected, uninterrupted.selected);
    EXPECT_DOUBLE_EQ(resumed.selection_cost_s,
                     uninterrupted.selection_cost_s);
    EXPECT_EQ(resumed_session.state.evaluations.size(), 20u);
  }
}

TEST(ResumeTest, KilledSessionResumesFromItsCheckpointFile) {
  const std::string path = "/tmp/robotune_resume_test.journal";
  std::remove(path.c_str());

  // Uninterrupted reference run.
  auto reference_objective = make_objective(13);
  RoboTune reference_tuner(fast_robotune());
  const auto reference =
      reference_tuner.tune_report(reference_objective, 20, 5);

  // A run that dies after the 8th journal flush (meta + 7 evaluations),
  // as a kill -9 would leave it: checkpoint file intact on disk, the
  // in-flight evaluation lost.
  {
    auto objective = make_objective(13);
    RoboTune tuner(fast_robotune());
    SessionLog session;
    int flushes = 0;
    session.flush = [&](const SessionCheckpoint& state) {
      ASSERT_TRUE(save_session_file(state, path));
      if (++flushes == 8) throw SimulatedKill();
    };
    EXPECT_THROW(tuner.tune_report(objective, 20, 5, nullptr, &session),
                 SimulatedKill);
  }

  SessionLog session;
  ASSERT_TRUE(load_session_file(path, session.state));
  EXPECT_EQ(session.state.evaluations.size(), 7u);
  session.flush = [&](const SessionCheckpoint& state) {
    save_session_file(state, path);
  };
  auto objective = make_objective(13);
  RoboTune tuner(fast_robotune());
  const auto resumed = tuner.tune_report(objective, 20, 5, nullptr, &session);
  expect_results_equal(reference.tuning, resumed.tuning);

  // The final checkpoint on disk now journals the whole session.
  SessionCheckpoint final_state;
  ASSERT_TRUE(load_session_file(path, final_state));
  EXPECT_EQ(final_state.evaluations.size(), 20u);
  std::remove(path.c_str());
}

TEST(ResumeTest, CooperativeCancelLeavesAResumableCheckpoint) {
  // Reference uninterrupted run.
  auto reference_objective = make_objective(13);
  RoboTune reference_tuner(fast_robotune());
  const auto reference =
      reference_tuner.tune_report(reference_objective, 20, 5);

  // A session cancelled mid-budget (the flush hook plays the role of the
  // SIGINT handler: it sets the flag after the 12th journaled
  // evaluation; the engine notices at the next round boundary).
  SessionLog session;
  std::atomic<bool> stop{false};
  int flushes = 0;
  session.flush = [&](const SessionCheckpoint&) {
    if (++flushes == 12) stop.store(true, std::memory_order_relaxed);
  };
  auto options = fast_robotune();
  options.bo.cancel = &stop;
  auto objective = make_objective(13);
  RoboTune tuner(options);
  const auto interrupted =
      tuner.tune_report(objective, 20, 5, nullptr, &session);
  EXPECT_TRUE(interrupted.bo.interrupted);
  EXPECT_LT(interrupted.tuning.history.size(), 20u);
  // 12 flushes = the selection checkpoint + 11 evaluations, and the
  // cancelled engine finished its in-flight round before stopping.
  EXPECT_GE(session.state.evaluations.size(), 11u);
  // Every completed evaluation made it into the checkpoint.
  EXPECT_EQ(session.state.evaluations.size(),
            interrupted.tuning.history.size());

  // The checkpoint resumes into exactly the uninterrupted session.
  SessionLog resumed_session;
  resumed_session.state = session.state;
  auto resumed_objective = make_objective(13);
  RoboTune resumed_tuner(fast_robotune());
  const auto resumed = resumed_tuner.tune_report(resumed_objective, 20, 5,
                                                 nullptr, &resumed_session);
  EXPECT_FALSE(resumed.bo.interrupted);
  expect_results_equal(reference.tuning, resumed.tuning);
  EXPECT_EQ(resumed_session.state.evaluations.size(), 20u);
}

TEST(ResumeTest, MismatchedCheckpointIsRejected) {
  auto objective = make_objective(13);
  RoboTune tuner(fast_robotune());
  SessionLog session;
  tuner.tune_report(objective, 20, 5, nullptr, &session);

  {
    SessionLog bad;
    bad.state = session.state;  // checkpoint taken at seed 5, resumed at 6
    auto o = make_objective(13);
    RoboTune t(fast_robotune());
    EXPECT_THROW(t.tune_report(o, 20, 6, nullptr, &bad), InvalidArgument);
  }
  {
    SessionLog bad;
    bad.state = session.state;  // checkpoint budget 20, resumed with 25
    auto o = make_objective(13);
    RoboTune t(fast_robotune());
    EXPECT_THROW(t.tune_report(o, 25, 5, nullptr, &bad), InvalidArgument);
  }
  {
    SessionLog bad;
    bad.state = session.state;
    bad.state.workload = "KMeans";
    auto o = make_objective(13);
    RoboTune t(fast_robotune());
    EXPECT_THROW(t.tune_report(o, 20, 5, nullptr, &bad), InvalidArgument);
  }
}

}  // namespace
}  // namespace robotune::core
