// Tier-1 determinism suite for the parallel batch-evaluation subsystem:
// every tuner driven through an EvalScheduler must produce bit-identical
// results at any worker count (1, 4, hardware_concurrency), with and
// without fault injection, and across checkpoint kill/resume — including
// journals written in out-of-order completion order.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "core/persistence.h"
#include "core/robotune.h"
#include "exec/eval_scheduler.h"
#include "sparksim/objective.h"
#include "tuners/bestconfig.h"
#include "tuners/gunther.h"
#include "tuners/random_search.h"
#include "tuners/rfhoc.h"

namespace robotune {
namespace {

constexpr int kBudget = 20;
constexpr std::uint64_t kSeed = 5;

sparksim::SparkObjective make_objective(bool with_faults,
                                        std::uint64_t seed = 13) {
  sparksim::SparkObjective objective(
      sparksim::ClusterSpec{},
      sparksim::make_workload(sparksim::WorkloadKind::kTeraSort, 1),
      sparksim::spark24_config_space(), seed);
  if (with_faults) {
    sparksim::FaultProfile faults;
    EXPECT_TRUE(sparksim::FaultProfile::from_preset("moderate", faults));
    objective.set_fault_profile(faults);
    sparksim::RetryPolicy retry;
    retry.max_retries = 2;
    objective.set_retry_policy(retry);
  }
  return objective;
}

core::RoboTuneOptions fast_robotune(int batch_size = 1) {
  core::RoboTuneOptions options;
  options.selection.generic_samples = 50;
  options.selection.forest_trees = 60;
  options.selection.permutation_repeats = 2;
  options.bo.initial_samples = 10;
  options.bo.hyperfit_every = 10;
  options.bo.batch_size = batch_size;
  return options;
}

std::unique_ptr<tuners::Tuner> make_tuner(const std::string& name) {
  if (name == "ROBOTune") {
    return std::make_unique<core::RoboTune>(fast_robotune());
  }
  if (name == "BestConfig") return std::make_unique<tuners::BestConfig>();
  if (name == "Gunther") return std::make_unique<tuners::Gunther>();
  if (name == "RFHOC") return std::make_unique<tuners::Rfhoc>();
  return std::make_unique<tuners::RandomSearch>();
}

tuners::TuningResult run_tuner(const std::string& name, int parallelism,
                               bool with_faults) {
  auto objective = make_objective(with_faults);
  auto tuner = make_tuner(name);
  exec::SchedulerOptions options;
  options.parallelism = parallelism;
  exec::EvalScheduler scheduler(options);
  tuner->set_scheduler(&scheduler);
  return tuner->tune(objective, kBudget, kSeed);
}

void expect_results_equal(const tuners::TuningResult& a,
                          const tuners::TuningResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].unit, b.history[i].unit) << "evaluation " << i;
    EXPECT_EQ(a.history[i].value_s, b.history[i].value_s) << i;
    EXPECT_EQ(a.history[i].cost_s, b.history[i].cost_s) << i;
    EXPECT_EQ(a.history[i].status, b.history[i].status) << i;
    EXPECT_EQ(a.history[i].stopped_early, b.history[i].stopped_early) << i;
    EXPECT_EQ(a.history[i].transient, b.history[i].transient) << i;
    EXPECT_EQ(a.history[i].attempts, b.history[i].attempts) << i;
  }
  EXPECT_EQ(a.best_index, b.best_index);
  EXPECT_DOUBLE_EQ(a.search_cost_s, b.search_cost_s);
}

const std::vector<std::string>& tuner_names() {
  static const std::vector<std::string> names = {
      "ROBOTune", "BestConfig", "Gunther", "RS", "RFHOC"};
  return names;
}

// ------------------------------------------- worker-count invariance ----

TEST(ParallelDeterminismTest, EveryTunerBitIdenticalAcrossWorkerCounts) {
  for (const auto& name : tuner_names()) {
    const auto serial = run_tuner(name, 1, /*with_faults=*/false);
    ASSERT_EQ(serial.history.size(), static_cast<std::size_t>(kBudget))
        << name;
    for (int parallelism : {4, 0}) {  // 0 = hardware_concurrency
      const auto parallel = run_tuner(name, parallelism, false);
      SCOPED_TRACE(name + " @ parallelism " + std::to_string(parallelism));
      expect_results_equal(serial, parallel);
    }
  }
}

TEST(ParallelDeterminismTest, EveryTunerBitIdenticalUnderFaultInjection) {
  for (const auto& name : tuner_names()) {
    const auto serial = run_tuner(name, 1, /*with_faults=*/true);
    for (int parallelism : {4, 0}) {
      const auto parallel = run_tuner(name, parallelism, true);
      SCOPED_TRACE(name + " @ parallelism " + std::to_string(parallelism));
      expect_results_equal(serial, parallel);
    }
  }
}

TEST(ParallelDeterminismTest, BatchBoTrajectoryIndependentOfWorkers) {
  std::vector<tuners::TuningResult> results;
  for (int parallelism : {1, 4, 0}) {
    auto objective = make_objective(false);
    core::RoboTune tuner(fast_robotune(/*batch_size=*/4));
    exec::SchedulerOptions options;
    options.parallelism = parallelism;
    exec::EvalScheduler scheduler(options);
    const auto report = tuner.tune_report(objective, kBudget, kSeed, nullptr,
                                          nullptr, &scheduler);
    results.push_back(report.tuning);
  }
  expect_results_equal(results[0], results[1]);
  expect_results_equal(results[0], results[2]);
}

// --------------------------------------------------- checkpoint/resume ----

core::RoboTuneReport run_session(core::SessionLog* session, int parallelism,
                                 bool with_faults, int batch_size = 2) {
  auto objective = make_objective(with_faults);
  core::RoboTune tuner(fast_robotune(batch_size));
  exec::SchedulerOptions options;
  options.parallelism = parallelism;
  exec::EvalScheduler scheduler(options);
  return tuner.tune_report(objective, kBudget, kSeed, nullptr, session,
                           &scheduler);
}

TEST(ParallelDeterminismTest, SchedulerSessionResumesIdentically) {
  for (const bool with_faults : {false, true}) {
    core::SessionLog full;
    const auto uninterrupted = run_session(&full, 4, with_faults);
    ASSERT_EQ(full.state.evaluations.size(),
              static_cast<std::size_t>(kBudget));
    EXPECT_TRUE(full.state.indexed_seeding);

    // Resume from several interruption points, at a different worker
    // count than the original session, with the kept journal shuffled
    // into an arbitrary completion order (what a crash mid-batch leaves).
    for (std::size_t kept : {0u, 6u, 13u}) {
      core::SessionLog resumed;
      resumed.state = full.state;
      resumed.state.evaluations.resize(kept);
      Rng rng(kept + 1);
      for (std::size_t i = kept; i > 1; --i) {
        std::swap(resumed.state.evaluations[i - 1],
                  resumed.state.evaluations[rng.uniform_index(i)]);
      }
      const auto continued = run_session(&resumed, 7, with_faults);
      SCOPED_TRACE("faults=" + std::to_string(with_faults) +
                   " kept=" + std::to_string(kept));
      expect_results_equal(uninterrupted.tuning, continued.tuning);
    }
  }
}

TEST(ParallelDeterminismTest, JournalWithHoleReplaysLongestPrefix) {
  core::SessionLog full;
  const auto uninterrupted = run_session(&full, 4, false);

  // Drop eval 5: a crash while 5 was in flight but 6..9 had finished.
  core::SessionLog holed;
  holed.state = full.state;
  holed.state.evaluations.resize(10);
  holed.state.evaluations.erase(holed.state.evaluations.begin() + 5);
  const auto continued = run_session(&holed, 3, false);
  expect_results_equal(uninterrupted.tuning, continued.tuning);
}

TEST(ParallelDeterminismTest, CrossModeResumeIsRefused) {
  // Journal written by a scheduler (indexed) session...
  core::SessionLog indexed;
  run_session(&indexed, 2, false);
  {
    core::SessionLog resumed;
    resumed.state = indexed.state;
    resumed.state.evaluations.resize(8);
    auto objective = make_objective(false);
    core::RoboTune tuner(fast_robotune());
    // ...must not resume detached (sequential seed streams).
    EXPECT_THROW(
        tuner.tune_report(objective, kBudget, kSeed, nullptr, &resumed),
        InvalidArgument);
  }

  // And a detached journal must not resume under a scheduler.
  core::SessionLog sequential;
  {
    auto objective = make_objective(false);
    core::RoboTune tuner(fast_robotune());
    tuner.tune_report(objective, kBudget, kSeed, nullptr, &sequential);
    EXPECT_FALSE(sequential.state.indexed_seeding);
  }
  {
    core::SessionLog resumed;
    resumed.state = sequential.state;
    resumed.state.evaluations.resize(8);
    EXPECT_THROW(run_session(&resumed, 2, false), InvalidArgument);
  }
}

TEST(ParallelDeterminismTest, SchedulerJournalRoundTripsThroughDisk) {
  const std::string path = "/tmp/robotune_parallel_determinism.journal";
  std::remove(path.c_str());
  core::SessionLog full;
  const auto uninterrupted = run_session(&full, 4, true);

  core::SessionCheckpoint cut = full.state;
  cut.evaluations.resize(11);
  ASSERT_TRUE(core::save_session_file(cut, path));
  core::SessionLog resumed;
  ASSERT_TRUE(core::load_session_file(path, resumed.state));
  EXPECT_TRUE(resumed.state.indexed_seeding);
  EXPECT_EQ(resumed.state.evaluations.size(), 11u);
  const auto continued = run_session(&resumed, 5, true);
  expect_results_equal(uninterrupted.tuning, continued.tuning);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace robotune
