// Tests for src/ml: CART trees, random forests, extra trees, permutation
// importance, linear models, cross-validation.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "common/statistics.h"
#include "ml/cross_validation.h"
#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "ml/linear_models.h"
#include "ml/permutation_importance.h"
#include "ml/random_forest.h"

namespace robotune::ml {
namespace {

// y = 10*x0 + noise-free step on x1; x2..x4 irrelevant.
Dataset make_linear_dataset(std::size_t n, Rng& rng, double noise = 0.0) {
  Dataset d(5);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> x(5);
    for (auto& v : x) v = rng.uniform();
    const double y = 10.0 * x[0] + 5.0 * (x[1] > 0.5 ? 1.0 : 0.0) +
                     (noise > 0 ? rng.normal(0, noise) : 0.0);
    d.add_row(x, y);
  }
  return d;
}

Dataset make_friedman(std::size_t n, std::size_t p, Rng& rng) {
  Dataset d(p);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> x(p);
    for (auto& v : x) v = rng.uniform();
    const double y = 10 * std::sin(3.14159 * x[0] * x[1]) +
                     20 * (x[2] - 0.5) * (x[2] - 0.5) + 10 * x[3] +
                     5 * x[4] + rng.normal(0, 0.3);
    d.add_row(x, y);
  }
  return d;
}

// ------------------------------------------------------------- Dataset ----

TEST(DatasetTest, AddRowAndAccess) {
  Dataset d(3);
  d.add_row(std::vector<double>{1, 2, 3}, 9.0);
  d.add_row(std::vector<double>{4, 5, 6}, -1.0);
  EXPECT_EQ(d.num_rows(), 2u);
  EXPECT_EQ(d.num_features(), 3u);
  EXPECT_DOUBLE_EQ(d.feature(1, 2), 6.0);
  EXPECT_DOUBLE_EQ(d.target(0), 9.0);
}

TEST(DatasetTest, WidthMismatchThrows) {
  Dataset d(2);
  EXPECT_THROW(d.add_row(std::vector<double>{1.0}, 0.0), InvalidArgument);
}

TEST(DatasetTest, SubsetAllowsRepeats) {
  Dataset d(1);
  d.add_row(std::vector<double>{1}, 10);
  d.add_row(std::vector<double>{2}, 20);
  const std::vector<std::size_t> rows = {1, 1, 0};
  const Dataset s = d.subset(rows);
  EXPECT_EQ(s.num_rows(), 3u);
  EXPECT_DOUBLE_EQ(s.target(0), 20.0);
  EXPECT_DOUBLE_EQ(s.target(2), 10.0);
}

// ------------------------------------------------------- DecisionTree ----

TEST(DecisionTreeTest, FitsSimpleStepFunction) {
  Dataset d(1);
  for (int i = 0; i < 50; ++i) {
    const double x = i / 50.0;
    d.add_row(std::vector<double>{x}, x < 0.5 ? 1.0 : 2.0);
  }
  Rng rng(1);
  DecisionTree tree({.max_features = 1, .min_samples_leaf = 1,
                     .min_samples_split = 2});
  tree.fit(d, rng);
  EXPECT_NEAR(tree.predict(std::vector<double>{0.2}), 1.0, 1e-9);
  EXPECT_NEAR(tree.predict(std::vector<double>{0.8}), 2.0, 1e-9);
}

TEST(DecisionTreeTest, RespectsMaxDepth) {
  Rng rng(2);
  Dataset d = make_friedman(200, 6, rng);
  TreeOptions opt;
  opt.max_depth = 2;
  DecisionTree tree(opt);
  tree.fit(d, rng);
  EXPECT_LE(tree.depth(), 2u);
}

TEST(DecisionTreeTest, ConstantTargetsMakeSingleLeaf) {
  Dataset d(2);
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    d.add_row(std::vector<double>{rng.uniform(), rng.uniform()}, 7.0);
  }
  DecisionTree tree;
  tree.fit(d, rng);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{0.5, 0.5}), 7.0);
}

TEST(DecisionTreeTest, MdiImportanceFavorsInformativeFeature) {
  Rng rng(4);
  Dataset d = make_linear_dataset(300, rng);
  DecisionTree tree({.max_features = 5});
  tree.fit(d, rng);
  const auto imp = tree.mdi_importance();
  EXPECT_GT(imp[0], imp[2]);
  EXPECT_GT(imp[0], imp[3]);
  EXPECT_GT(imp[1], imp[4]);
}

TEST(DecisionTreeTest, PredictBeforeFitThrows) {
  DecisionTree tree;
  EXPECT_THROW(tree.predict(std::vector<double>{0.1}), InvalidArgument);
}

TEST(DecisionTreeTest, RandomThresholdModeStillLearns) {
  Rng rng(5);
  Dataset d = make_linear_dataset(400, rng);
  TreeOptions opt;
  opt.split_mode = SplitMode::kRandomThreshold;
  opt.max_features = 5;
  DecisionTree tree(opt);
  tree.fit(d, rng);
  const double lo = tree.predict(std::vector<double>{0.05, 0.2, 0.5, 0.5, 0.5});
  const double hi = tree.predict(std::vector<double>{0.95, 0.8, 0.5, 0.5, 0.5});
  EXPECT_GT(hi, lo + 5.0);
}

// ------------------------------------------------------- RandomForest ----

TEST(RandomForestTest, BeatsMeanPredictorOnFriedman) {
  Rng rng(6);
  Dataset train = make_friedman(300, 10, rng);
  Dataset test = make_friedman(200, 10, rng);
  RandomForest rf({.num_trees = 100}, 7);
  rf.fit(train);
  std::vector<double> y_true, y_pred;
  for (std::size_t i = 0; i < test.num_rows(); ++i) {
    y_true.push_back(test.target(i));
    y_pred.push_back(rf.predict(test.row(i)));
  }
  EXPECT_GT(stats::r2_score(y_true, y_pred), 0.6);
}

TEST(RandomForestTest, OobR2IsReasonable) {
  Rng rng(7);
  Dataset d = make_friedman(400, 10, rng);
  RandomForest rf({.num_trees = 150}, 7);
  rf.fit(d);
  EXPECT_GT(rf.oob_r2(), 0.5);
  EXPECT_LE(rf.oob_r2(), 1.0);
}

TEST(RandomForestTest, DeterministicForSeed) {
  Rng rng(8);
  Dataset d = make_friedman(150, 6, rng);
  RandomForest a({.num_trees = 30}, 99);
  RandomForest b({.num_trees = 30}, 99);
  a.fit(d);
  b.fit(d);
  std::vector<double> x = {0.2, 0.4, 0.6, 0.8, 0.1, 0.5};
  EXPECT_DOUBLE_EQ(a.predict(x), b.predict(x));
}

TEST(RandomForestTest, SerialAndParallelTrainingAgree) {
  Rng rng(9);
  Dataset d = make_friedman(120, 6, rng);
  ForestOptions serial;
  serial.num_trees = 20;
  serial.parallel = false;
  ForestOptions parallel = serial;
  parallel.parallel = true;
  RandomForest a(serial, 5);
  RandomForest b(parallel, 5);
  a.fit(d);
  b.fit(d);
  std::vector<double> x = {0.3, 0.3, 0.3, 0.3, 0.3, 0.3};
  EXPECT_DOUBLE_EQ(a.predict(x), b.predict(x));
}

TEST(RandomForestTest, OobPredictionMissingOnlyWhenAlwaysInBag) {
  Rng rng(10);
  Dataset d = make_friedman(60, 6, rng);
  RandomForest rf({.num_trees = 200}, 3);
  rf.fit(d);
  // With 200 bootstraps the chance a row is in-bag for all trees is ~0.
  int missing = 0;
  for (std::size_t i = 0; i < d.num_rows(); ++i) {
    if (!rf.oob_prediction(i)) ++missing;
  }
  EXPECT_EQ(missing, 0);
}

TEST(RandomForestTest, MdiImportanceSumsToOne) {
  Rng rng(11);
  Dataset d = make_friedman(200, 8, rng);
  RandomForest rf({.num_trees = 50}, 3);
  rf.fit(d);
  const auto imp = rf.mdi_importance();
  EXPECT_NEAR(std::accumulate(imp.begin(), imp.end(), 0.0), 1.0, 1e-9);
}

TEST(RandomForestTest, ExtraTreesLearnsToo) {
  Rng rng(12);
  Dataset train = make_friedman(300, 10, rng);
  Dataset test = make_friedman(150, 10, rng);
  RandomForest et = RandomForest::extra_trees(100, 7);
  et.fit(train);
  std::vector<double> y_true, y_pred;
  for (std::size_t i = 0; i < test.num_rows(); ++i) {
    y_true.push_back(test.target(i));
    y_pred.push_back(et.predict(test.row(i)));
  }
  EXPECT_GT(stats::r2_score(y_true, y_pred), 0.5);
}

TEST(RandomForestTest, TooFewRowsThrows) {
  Dataset d(2);
  d.add_row(std::vector<double>{0, 0}, 0);
  RandomForest rf;
  EXPECT_THROW(rf.fit(d), InvalidArgument);
}

// --------------------------------------------- PermutationImportance ----

TEST(PermutationImportanceTest, IdentifiesPlantedFeatures) {
  Rng rng(13);
  Dataset d = make_linear_dataset(300, rng, 0.2);
  RandomForest rf({.num_trees = 100}, 3);
  rf.fit(d);
  std::vector<FeatureGroup> groups;
  for (std::size_t f = 0; f < 5; ++f) {
    groups.push_back({"f" + std::to_string(f), {f}});
  }
  const auto results = permutation_importance(rf, groups, {.repeats = 5});
  // Results are sorted descending; the two informative features first.
  EXPECT_TRUE(results[0].group.name == "f0" || results[0].group.name == "f1");
  EXPECT_GT(results[0].mean_drop, 0.1);
  // Irrelevant features have near-zero drops.
  for (const auto& r : results) {
    if (r.group.name != "f0" && r.group.name != "f1") {
      EXPECT_LT(r.mean_drop, 0.05);
    }
  }
}

TEST(PermutationImportanceTest, GroupedFeaturesPermuteJointly) {
  // y depends on x0 XOR-ishly with x1: individually weak, jointly strong.
  Rng rng(14);
  Dataset d(4);
  for (int i = 0; i < 400; ++i) {
    std::vector<double> x(4);
    for (auto& v : x) v = rng.uniform();
    const double y =
        ((x[0] > 0.5) != (x[1] > 0.5)) ? 10.0 : 0.0;
    d.add_row(x, y);
  }
  RandomForest rf({.num_trees = 100}, 3);
  rf.fit(d);
  const std::vector<FeatureGroup> joint = {{"x0+x1", {0, 1}},
                                           {"x2", {2}},
                                           {"x3", {3}}};
  const auto results = permutation_importance(rf, joint, {.repeats = 5});
  EXPECT_EQ(results[0].group.name, "x0+x1");
  EXPECT_GT(results[0].mean_drop, 0.3);
}

TEST(PermutationImportanceTest, SelectImportantAppliesThreshold) {
  std::vector<ImportanceResult> results(3);
  results[0].mean_drop = 0.2;
  results[1].mean_drop = 0.06;
  results[2].mean_drop = 0.01;
  const auto sel = select_important(results, 0.05);
  ASSERT_EQ(sel.size(), 2u);
  EXPECT_EQ(sel[0], 0u);
  EXPECT_EQ(sel[1], 1u);
}

TEST(PermutationImportanceTest, UntrainedForestThrows) {
  RandomForest rf;
  EXPECT_THROW(permutation_importance(rf, {}), InvalidArgument);
}

// ------------------------------------------------------- Linear models ----

TEST(LassoTest, RecoversSparseCoefficients) {
  Rng rng(15);
  Dataset d(6);
  for (int i = 0; i < 300; ++i) {
    std::vector<double> x(6);
    for (auto& v : x) v = rng.uniform(-1, 1);
    const double y = 3.0 * x[0] - 2.0 * x[1] + rng.normal(0, 0.05);
    d.add_row(x, y);
  }
  Lasso lasso(0.01);
  lasso.fit(d);
  const auto coef = lasso.coefficients();
  EXPECT_NEAR(coef[0], 3.0, 0.2);
  EXPECT_NEAR(coef[1], -2.0, 0.2);
  for (std::size_t j = 2; j < 6; ++j) EXPECT_NEAR(coef[j], 0.0, 0.1);
}

TEST(LassoTest, StrongRegularizationZeroesEverything) {
  Rng rng(16);
  Dataset d = make_linear_dataset(100, rng);
  Lasso lasso(1000.0);
  lasso.fit(d);
  for (double c : lasso.coefficients()) EXPECT_DOUBLE_EQ(c, 0.0);
  // Prediction falls back to the target mean.
  const double mean = stats::mean(d.targets());
  EXPECT_NEAR(lasso.predict(d.row(0)), mean, 1e-9);
}

TEST(ElasticNetTest, HandlesConstantFeature) {
  Rng rng(17);
  Dataset d(3);
  for (int i = 0; i < 100; ++i) {
    const double x0 = rng.uniform();
    d.add_row(std::vector<double>{x0, 1.0, rng.uniform()}, 2.0 * x0);
  }
  ElasticNet net({.alpha = 0.01, .l1_ratio = 0.5});
  net.fit(d);
  EXPECT_DOUBLE_EQ(net.coefficients()[1], 0.0);
  EXPECT_NEAR(net.predict(std::vector<double>{0.5, 1.0, 0.5}), 1.0, 0.2);
}

TEST(ElasticNetTest, ConvergesBeforeMaxIterations) {
  Rng rng(18);
  Dataset d = make_linear_dataset(200, rng, 0.1);
  ElasticNet net({.alpha = 0.05, .l1_ratio = 0.7, .max_iterations = 500});
  net.fit(d);
  EXPECT_LT(net.iterations_used(), 500);
}

TEST(ElasticNetTest, PredictBeforeFitThrows) {
  ElasticNet net;
  EXPECT_THROW(net.predict(std::vector<double>{1.0}), InvalidArgument);
}

TEST(LinearVsTreeTest, TreesBeatLassoOnNonlinearTarget) {
  // The Figure-2 rationale: linear models fail on non-linear responses.
  Rng rng(19);
  Dataset d(4);
  for (int i = 0; i < 300; ++i) {
    std::vector<double> x(4);
    for (auto& v : x) v = rng.uniform();
    const double y = 8.0 * std::sin(6.0 * x[0]) * (x[1] > 0.5 ? 1 : -1);
    d.add_row(x, y);
  }
  const auto lasso_cv = cross_validate(
      d, [] { return std::make_unique<Lasso>(0.01); }, 5, 1);
  const auto rf_cv = cross_validate(
      d,
      [] {
        return std::make_unique<RandomForest>(
            ForestOptions{.num_trees = 80}, 3);
      },
      5, 1);
  EXPECT_GT(rf_cv.mean_score, lasso_cv.mean_score + 0.3);
}

// --------------------------------------------------- Cross-validation ----

TEST(KFoldTest, FoldsPartitionAllRows) {
  Rng rng(20);
  const auto folds = kfold_split(23, 5, rng);
  ASSERT_EQ(folds.size(), 5u);
  std::vector<char> seen(23, 0);
  for (const auto& fold : folds) {
    for (std::size_t r : fold) {
      EXPECT_LT(r, 23u);
      EXPECT_FALSE(seen[r]);
      seen[r] = 1;
    }
  }
  for (char s : seen) EXPECT_TRUE(s);
}

TEST(KFoldTest, FoldSizesDifferByAtMostOne) {
  Rng rng(21);
  const auto folds = kfold_split(23, 5, rng);
  std::size_t lo = 100, hi = 0;
  for (const auto& f : folds) {
    lo = std::min(lo, f.size());
    hi = std::max(hi, f.size());
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(KFoldTest, InvalidArgumentsThrow) {
  Rng rng(22);
  EXPECT_THROW(kfold_split(10, 1, rng), InvalidArgument);
  EXPECT_THROW(kfold_split(3, 5, rng), InvalidArgument);
}

TEST(CrossValidateTest, HighScoreOnLearnableData) {
  Rng rng(23);
  Dataset d = make_linear_dataset(250, rng, 0.1);
  const auto cv = cross_validate(
      d, [] { return std::make_unique<Lasso>(0.001); }, 5, 7);
  EXPECT_EQ(cv.fold_scores.size(), 5u);
  // The step term on x1 is not exactly linear, so a high-but-imperfect
  // score is expected.
  EXPECT_GT(cv.mean_score, 0.85);
}

}  // namespace
}  // namespace robotune::ml
