// Tests for the fault-injection layer: RunStatus round-trips, injector
// semantics (mitigation knobs, escalation bounds), engine-level
// determinism and opt-in byte-identity, and the objective's retry /
// censoring pipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "sparksim/engine.h"
#include "sparksim/faults.h"
#include "sparksim/objective.h"
#include "sparksim/param_space.h"
#include "sparksim/spark_config.h"
#include "sparksim/workload.h"

namespace robotune::sparksim {
namespace {

const ConfigSpace& space() {
  static const ConfigSpace s = spark24_config_space();
  return s;
}

// A configuration that completes healthily on the default cluster (same
// shape as sparksim_test's tuned_config).
DecodedConfig tuned_config() {
  auto v = space().defaults();
  const auto set = [&](const char* n, double val) {
    v[*space().index_of(n)] = val;
  };
  set("spark.executor.cores", 8);
  set("spark.executor.memory.mb", 32768);
  set("spark.memory.fraction", 0.7);
  set("spark.serializer", 1);
  set("spark.default.parallelism", 400);
  set("spark.executor.gc", 1);
  return v;
}

SimResult run_with_profile(const FaultProfile& profile, std::uint64_t seed,
                           double noise = 0.0,
                           WorkloadKind kind = WorkloadKind::kPageRank) {
  const auto config = SparkConfig::from_decoded(space(), tuned_config());
  EngineOptions options;
  options.run_noise_sigma = noise;
  options.faults = profile;
  return simulate(ClusterSpec{}, make_workload(kind, 1), config, seed,
                  options);
}

void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.seconds, b.seconds);  // bit-identical, not just close
  EXPECT_EQ(a.stage_seconds, b.stage_seconds);
  EXPECT_EQ(a.failure_stage, b.failure_stage);
  EXPECT_EQ(a.metrics.executors_lost, b.metrics.executors_lost);
  EXPECT_EQ(a.metrics.task_retries, b.metrics.task_retries);
  EXPECT_EQ(a.metrics.stage_reattempts, b.metrics.stage_reattempts);
  EXPECT_EQ(a.metrics.fault_delay_s, b.metrics.fault_delay_s);
  EXPECT_EQ(a.metrics.cpu_seconds, b.metrics.cpu_seconds);
  EXPECT_EQ(a.metrics.network_seconds, b.metrics.network_seconds);
}

// --------------------------------------------------------- RunStatus ----

TEST(RunStatusTest, RoundTripsEveryEnumerator) {
  for (RunStatus s : all_run_statuses()) {
    const auto label = to_string(s);
    const auto back = run_status_from_string(label);
    ASSERT_TRUE(back.has_value()) << label;
    EXPECT_EQ(*back, s) << label;
  }
}

TEST(RunStatusTest, LabelsAreUnique) {
  std::set<std::string> labels;
  for (RunStatus s : all_run_statuses()) labels.insert(to_string(s));
  EXPECT_EQ(labels.size(), all_run_statuses().size());
}

TEST(RunStatusTest, UnknownValuesHaveStableLabel) {
  const auto bogus = static_cast<RunStatus>(999);
  EXPECT_EQ(to_string(bogus), "unknown");
  EXPECT_EQ(to_string(bogus), to_string(static_cast<RunStatus>(1000)));
  EXPECT_FALSE(run_status_from_string("unknown").has_value());
  EXPECT_FALSE(run_status_from_string("no-such-status").has_value());
}

TEST(RunStatusTest, OnlyInjectedFaultsAreTransient) {
  // kKilled is deliberately NOT transient: a racer-killed configuration
  // would just be killed again on retry, so the retry loop must not
  // re-run it (censoring happens downstream instead).
  for (RunStatus s : all_run_statuses()) {
    const bool expected = s == RunStatus::kExecutorLost ||
                          s == RunStatus::kFetchFailure ||
                          s == RunStatus::kPreempted;
    EXPECT_EQ(is_transient(s), expected) << to_string(s);
  }
}

// ------------------------------------------------------- FaultProfile ----

TEST(FaultProfileTest, DefaultIsInactive) {
  EXPECT_FALSE(FaultProfile{}.active());
  // Non-rate knobs alone never activate the profile.
  FaultProfile p;
  p.straggler_max_slowdown = 9.0;
  p.max_stage_attempts = 1;
  EXPECT_FALSE(p.active());
  EXPECT_TRUE(FaultProfile::uniform(0.05).active());
  EXPECT_FALSE(FaultProfile::uniform(0.0).active());
}

TEST(FaultProfileTest, PresetsParseAndUnknownIsRejected) {
  FaultProfile p;
  for (const char* name : {"none", "mild", "moderate", "severe"}) {
    EXPECT_TRUE(FaultProfile::from_preset(name, p)) << name;
  }
  EXPECT_TRUE(FaultProfile::from_preset("severe", p));
  EXPECT_TRUE(p.active());
  EXPECT_FALSE(FaultProfile::from_preset("catastrophic", p));
}

// ------------------------------------------------------ FaultInjector ----

TEST(FaultInjectorTest, ExecutorLossEscalatesToTaskMaxFailures) {
  FaultProfile p;
  p.executor_loss_per_stage = 1.0;  // every trial fires
  SparkConfig config;
  config.task_max_failures = 3;
  FaultInjector injector(p, 7);
  const auto f = injector.sample_stage(config, /*has_shuffle_read=*/false);
  EXPECT_EQ(f.executor_losses, 3);
  EXPECT_TRUE(f.executor_exhausted);

  config.task_max_failures = 1;
  FaultInjector strict(p, 7);
  const auto g = strict.sample_stage(config, false);
  EXPECT_EQ(g.executor_losses, 1);
  EXPECT_TRUE(g.executor_exhausted);
}

TEST(FaultInjectorTest, FetchFailuresRequireShuffleRead) {
  FaultProfile p;
  p.fetch_failure_per_stage = 1.0;
  SparkConfig config;  // shuffle_io_max_retries = 3 -> no mitigation
  FaultInjector injector(p, 11);
  const auto map_stage = injector.sample_stage(config, false);
  EXPECT_EQ(map_stage.fetch_retries, 0);
  EXPECT_FALSE(map_stage.fetch_exhausted);
  const auto reduce_stage = injector.sample_stage(config, true);
  EXPECT_EQ(reduce_stage.fetch_retries, p.max_stage_attempts);
  EXPECT_TRUE(reduce_stage.fetch_exhausted);
}

TEST(FaultInjectorTest, HigherIoRetriesMitigateFetchFailures) {
  FaultProfile p;
  p.fetch_failure_per_stage = 0.8;
  SparkConfig low, high;
  low.shuffle_io_max_retries = 3;    // baseline
  high.shuffle_io_max_retries = 12;  // halves the round probability 9x
  FaultInjector a(p, 13), b(p, 13);
  int low_retries = 0, high_retries = 0;
  for (int i = 0; i < 200; ++i) {
    low_retries += a.sample_stage(low, true).fetch_retries;
    high_retries += b.sample_stage(high, true).fetch_retries;
  }
  EXPECT_GT(low_retries, 10 * std::max(1, high_retries));
}

TEST(FaultInjectorTest, SpeculationCapsStragglerSlowdown) {
  FaultProfile p;
  p.straggler_per_stage = 1.0;
  p.straggler_max_slowdown = 8.0;
  SparkConfig spec, plain;
  spec.speculation = true;
  spec.speculation_multiplier = 1.5;
  FaultInjector a(p, 17), b(p, 17);
  double spec_max = 1.0, plain_max = 1.0;
  for (int i = 0; i < 100; ++i) {
    spec_max = std::max(spec_max, a.sample_stage(spec, false).straggler_slowdown);
    plain_max =
        std::max(plain_max, b.sample_stage(plain, false).straggler_slowdown);
  }
  EXPECT_LE(spec_max, 1.5);
  EXPECT_GT(plain_max, 2.0);  // uncapped draws reach well past the multiplier
}

TEST(FaultInjectorTest, PreemptionsCapAtTwoAndEscalate) {
  FaultProfile p;
  p.preemption_per_stage = 1.0;  // every trial fires
  SparkConfig config;
  FaultInjector injector(p, 19);
  const auto f = injector.sample_stage(config, false);
  EXPECT_EQ(f.preemptions, 2);  // capped by the two-strikes rule
  EXPECT_TRUE(f.preempted);
  EXPECT_TRUE(f.any());
}

TEST(FaultInjectorTest, ModeratePreemptionRateLeavesSurvivors) {
  FaultProfile p;
  p.preemption_per_stage = 0.3;
  SparkConfig config;
  FaultInjector injector(p, 23);
  int survivable = 0, fatal = 0, clean = 0;
  for (int i = 0; i < 200; ++i) {
    const auto f = injector.sample_stage(config, false);
    if (f.preempted) {
      ++fatal;
      EXPECT_EQ(f.preemptions, 2);
    } else if (f.preemptions == 1) {
      ++survivable;  // one preemption reschedules; the stage survives
    } else {
      ++clean;
      EXPECT_EQ(f.preemptions, 0);
    }
  }
  EXPECT_GT(survivable, 0);
  EXPECT_GT(fatal, 0);
  EXPECT_GT(clean, 0);
}

TEST(FaultInjectorTest, ZeroPreemptionRateDrawsNothing) {
  // A preemption-free profile must not consume randomness: the
  // executor-loss stream is unchanged whether the knob exists or not.
  FaultProfile base;
  base.executor_loss_per_stage = 0.2;
  FaultProfile with_knob = base;
  with_knob.preemption_per_stage = 0.0;
  SparkConfig config;
  FaultInjector a(base, 31), b(with_knob, 31);
  for (int i = 0; i < 100; ++i) {
    const auto fa = a.sample_stage(config, false);
    const auto fb = b.sample_stage(config, false);
    EXPECT_EQ(fa.executor_losses, fb.executor_losses);
    EXPECT_EQ(fb.preemptions, 0);
    EXPECT_FALSE(fb.preempted);
  }
}

TEST(FaultInjectorTest, DeterministicPerSeed) {
  const auto p = FaultProfile::uniform(0.2, 4.0);
  SparkConfig config;
  FaultInjector a(p, 99), b(p, 99), c(p, 100);
  bool any_difference_across_seeds = false;
  for (int i = 0; i < 100; ++i) {
    const auto fa = a.sample_stage(config, i % 2 == 0);
    const auto fb = b.sample_stage(config, i % 2 == 0);
    const auto fc = c.sample_stage(config, i % 2 == 0);
    EXPECT_EQ(fa.executor_losses, fb.executor_losses);
    EXPECT_EQ(fa.fetch_retries, fb.fetch_retries);
    EXPECT_EQ(fa.straggler_slowdown, fb.straggler_slowdown);
    EXPECT_EQ(fa.executor_exhausted, fb.executor_exhausted);
    EXPECT_EQ(fa.fetch_exhausted, fb.fetch_exhausted);
    if (fa.executor_losses != fc.executor_losses ||
        fa.straggler_slowdown != fc.straggler_slowdown) {
      any_difference_across_seeds = true;
    }
  }
  EXPECT_TRUE(any_difference_across_seeds);
}

// ------------------------------------------------------------- engine ----

TEST(EngineFaultsTest, ZeroRateProfileIsByteIdenticalToDefault) {
  // The fault layer is strictly opt-in: an inactive profile must not
  // consume randomness, so even noisy runs match bit for bit.
  FaultProfile inactive;
  inactive.straggler_max_slowdown = 9.0;  // non-rate knobs are irrelevant
  inactive.max_stage_attempts = 1;
  for (std::uint64_t seed : {1u, 7u, 42u}) {
    const auto plain = run_with_profile(FaultProfile{}, seed, 0.04);
    const auto with_profile = run_with_profile(inactive, seed, 0.04);
    expect_identical(plain, with_profile);
    EXPECT_EQ(plain.metrics.executors_lost, 0);
    EXPECT_EQ(plain.metrics.fault_delay_s, 0.0);
  }
}

TEST(EngineFaultsTest, ActiveProfileIsDeterministicPerSeed) {
  const auto p = FaultProfile::uniform(0.15, 3.0);
  for (std::uint64_t seed : {3u, 8u, 21u}) {
    expect_identical(run_with_profile(p, seed, 0.04),
                     run_with_profile(p, seed, 0.04));
  }
}

TEST(EngineFaultsTest, DeterministicAcrossThreadCounts) {
  const auto p = FaultProfile::uniform(0.15, 3.0);
  constexpr std::size_t kRuns = 8;
  std::vector<SimResult> serial(kRuns), pooled(kRuns);
  for (std::size_t i = 0; i < kRuns; ++i) {
    serial[i] = run_with_profile(p, 100 + i, 0.04);
  }
  ThreadPool pool(4);
  pool.parallel_for(kRuns, [&](std::size_t i) {
    pooled[i] = run_with_profile(p, 100 + i, 0.04);
  });
  for (std::size_t i = 0; i < kRuns; ++i) {
    expect_identical(serial[i], pooled[i]);
  }
}

TEST(EngineFaultsTest, StragglersOnlySlowTheRunDown) {
  FaultProfile p;
  p.straggler_per_stage = 1.0;
  p.straggler_max_slowdown = 3.0;
  for (std::uint64_t seed : {2u, 5u, 9u}) {
    const auto healthy = run_with_profile(FaultProfile{}, seed);
    const auto slowed = run_with_profile(p, seed);
    ASSERT_EQ(slowed.status, RunStatus::kOk);
    EXPECT_GT(slowed.seconds, healthy.seconds);
    EXPECT_GT(slowed.metrics.fault_delay_s, 0.0);
  }
}

TEST(EngineFaultsTest, HeavyLossRatesKillSomeRunsTransiently) {
  FaultProfile p;
  p.executor_loss_per_stage = 0.5;  // exhaustion chance ~6% per stage
  int lost = 0, ok = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const auto r = run_with_profile(p, seed);
    if (r.status == RunStatus::kExecutorLost) {
      ++lost;
      EXPECT_FALSE(r.failure_stage.empty());
      EXPECT_TRUE(is_transient(r.status));
    } else if (r.status == RunStatus::kOk) {
      ++ok;
      // Survivors still paid for re-queued tasks along the way.
      if (r.metrics.executors_lost > 0) {
        EXPECT_GT(r.metrics.task_retries, 0);
        EXPECT_GT(r.metrics.fault_delay_s, 0.0);
      }
    }
  }
  EXPECT_GT(lost, 0);
  EXPECT_GT(ok, 0);
}

TEST(EngineFaultsTest, SurvivablePreemptionsOnlySlowTheRunDown) {
  FaultProfile p;
  p.preemption_per_stage = 0.15;  // mostly single hits per stage
  int slowed = 0, preempted = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const auto healthy = run_with_profile(FaultProfile{}, seed);
    const auto r = run_with_profile(p, seed);
    if (r.status == RunStatus::kPreempted) {
      ++preempted;
      EXPECT_FALSE(r.failure_stage.empty());
      EXPECT_TRUE(is_transient(r.status));
      EXPECT_GE(r.metrics.preemptions, 2);
    } else if (r.metrics.preemptions > 0) {
      ASSERT_EQ(r.status, RunStatus::kOk);
      ++slowed;
      EXPECT_GT(r.seconds, healthy.seconds);
      EXPECT_GT(r.metrics.fault_delay_s, 0.0);
      EXPECT_GT(r.metrics.task_retries, 0);
    }
  }
  EXPECT_GT(slowed, 0);
  EXPECT_GT(preempted, 0);
}

TEST(EngineFaultsTest, PreemptionRunsAreDeterministicPerSeed) {
  FaultProfile p;
  p.preemption_per_stage = 0.25;
  for (std::uint64_t seed : {4u, 12u, 33u}) {
    const auto a = run_with_profile(p, seed, 0.04);
    const auto b = run_with_profile(p, seed, 0.04);
    expect_identical(a, b);
    EXPECT_EQ(a.metrics.preemptions, b.metrics.preemptions);
    EXPECT_EQ(a.kill_reason, b.kill_reason);
  }
}

// ---------------------------------------------------------- objective ----

SparkObjective make_faulty_objective(const FaultProfile& profile,
                                     int max_retries,
                                     std::uint64_t seed = 77) {
  SparkObjective objective(ClusterSpec{},
                           make_workload(WorkloadKind::kPageRank, 1),
                           space(), seed);
  objective.set_fault_profile(profile);
  RetryPolicy retry;
  retry.max_retries = max_retries;
  objective.set_retry_policy(retry);
  return objective;
}

std::vector<std::vector<double>> random_units(std::size_t n,
                                              std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> units(n);
  for (auto& u : units) {
    u.resize(space().size());
    for (auto& x : u) x = rng.uniform();
  }
  return units;
}

TEST(ObjectiveFaultsTest, RetryPolicyBackoffIsExponential) {
  RetryPolicy retry;
  EXPECT_DOUBLE_EQ(retry.backoff_s(0), 5.0);
  EXPECT_DOUBLE_EQ(retry.backoff_s(1), 10.0);
  EXPECT_DOUBLE_EQ(retry.backoff_s(2), 20.0);
}

TEST(ObjectiveFaultsTest, RetriesRecoverTransientFailures) {
  FaultProfile p;
  p.executor_loss_per_stage = 0.5;
  auto objective = make_faulty_objective(p, /*max_retries=*/3);
  std::size_t retried = 0, recovered = 0, exhausted = 0;
  for (const auto& unit : random_units(30, 123)) {
    const auto out = objective.evaluate(unit);
    EXPECT_GE(out.attempts, 1);
    EXPECT_LE(out.attempts, 4);
    if (out.attempts > 1) {
      ++retried;
      if (out.status == RunStatus::kOk) {
        ++recovered;
        // The session paid for the failed attempts and the backoff waits
        // on top of the final successful run.
        EXPECT_GT(out.cost_s, out.raw.seconds + 5.0);
      }
    }
    if (out.transient) {
      ++exhausted;
      EXPECT_EQ(out.attempts, 4);  // all retries consumed
      EXPECT_TRUE(is_transient(out.status));
    }
  }
  EXPECT_GT(retried, 0u);
  EXPECT_GT(recovered, 0u);
  EXPECT_GE(retried, exhausted);
}

TEST(ObjectiveFaultsTest, ExhaustedTransientsAreCensoredAtThreshold) {
  FaultProfile p;
  p.executor_loss_per_stage = 0.95;  // near-certain death, fail fast
  auto objective = make_faulty_objective(p, /*max_retries=*/0);
  bool saw_transient = false;
  for (const auto& unit : random_units(10, 321)) {
    const auto out = objective.evaluate(unit, /*stop_threshold_s=*/350.0);
    if (!out.transient) continue;
    saw_transient = true;
    EXPECT_EQ(out.attempts, 1);
    // Censored like a guard stop: the observation is the threshold, the
    // charge is what the attempt actually cost — never the failure
    // penalty deterministic failures earn (350 * 1.05).
    EXPECT_DOUBLE_EQ(out.value_s, 350.0);
    EXPECT_GT(out.cost_s, 0.0);
    EXPECT_FALSE(out.stopped_early);
  }
  EXPECT_TRUE(saw_transient);
}

TEST(ObjectiveFaultsTest, ResetCountersRestoresTheSeedStream) {
  const auto units = random_units(6, 555);
  auto objective = make_faulty_objective(FaultProfile::uniform(0.2), 2);
  std::vector<EvalOutcome> first;
  for (const auto& u : units) first.push_back(objective.evaluate(u));
  const auto draws = objective.seed_draws();
  EXPECT_GT(draws, 0u);

  objective.reset_counters();
  EXPECT_EQ(objective.seed_draws(), 0u);
  EXPECT_EQ(objective.evaluations(), 0u);
  for (std::size_t i = 0; i < units.size(); ++i) {
    const auto out = objective.evaluate(units[i]);
    EXPECT_EQ(out.value_s, first[i].value_s);
    EXPECT_EQ(out.cost_s, first[i].cost_s);
    EXPECT_EQ(out.status, first[i].status);
    EXPECT_EQ(out.attempts, first[i].attempts);
    EXPECT_EQ(out.transient, first[i].transient);
  }
  EXPECT_EQ(objective.seed_draws(), draws);
}

TEST(ObjectiveFaultsTest, SkipSeedDrawsFastForwardsExactly) {
  const auto units = random_units(2, 777);
  auto live = make_faulty_objective(FaultProfile::uniform(0.25), 2);
  const auto first = live.evaluate(units[0]);
  const auto second = live.evaluate(units[1]);

  // A resumed objective replays the first evaluation as a skip and must
  // land on the identical second outcome.
  auto resumed = make_faulty_objective(FaultProfile::uniform(0.25), 2);
  resumed.skip_seed_draws(static_cast<std::uint64_t>(first.attempts));
  const auto replayed = resumed.evaluate(units[1]);
  EXPECT_EQ(replayed.value_s, second.value_s);
  EXPECT_EQ(replayed.cost_s, second.cost_s);
  EXPECT_EQ(replayed.status, second.status);
  EXPECT_EQ(replayed.attempts, second.attempts);
}

TEST(ObjectiveFaultsTest, PreemptionsRetryAndCensorLikeOtherTransients) {
  FaultProfile p;
  p.preemption_per_stage = 0.6;  // fatal double-preemptions are common
  auto objective = make_faulty_objective(p, /*max_retries=*/2);
  std::size_t retried = 0, censored = 0;
  for (const auto& unit : random_units(30, 456)) {
    const auto out = objective.evaluate(unit, /*stop_threshold_s=*/400.0);
    if (out.attempts > 1) ++retried;
    if (out.transient) {
      ++censored;
      EXPECT_EQ(out.status, RunStatus::kPreempted);
      EXPECT_EQ(out.attempts, 3);  // all retries consumed
      EXPECT_DOUBLE_EQ(out.value_s, 400.0);  // censored at the threshold
      EXPECT_GT(out.cost_s, 0.0);
    }
  }
  EXPECT_GT(retried, 0u);
  EXPECT_GT(censored, 0u);
}

TEST(ObjectiveFaultsTest, InactiveProfileMatchesFaultFreeObjective) {
  const auto units = random_units(5, 888);
  SparkObjective plain(ClusterSpec{},
                       make_workload(WorkloadKind::kPageRank, 1), space(),
                       77);
  auto zeroed = make_faulty_objective(FaultProfile{}, /*max_retries=*/3);
  for (const auto& u : units) {
    const auto a = plain.evaluate(u);
    const auto b = zeroed.evaluate(u);
    EXPECT_EQ(a.value_s, b.value_s);
    EXPECT_EQ(a.cost_s, b.cost_s);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(b.attempts, 1);  // nothing transient to retry
  }
}

}  // namespace
}  // namespace robotune::sparksim
