// Cross-module integration tests: the full tuning pipeline end to end,
// mirroring (in miniature) the paper's evaluation setup.
#include <gtest/gtest.h>

#include <memory>

#include "core/robotune.h"
#include "gp/gaussian_process.h"
#include "sparksim/objective.h"
#include "tuners/bestconfig.h"
#include "tuners/gunther.h"
#include "tuners/random_search.h"

namespace robotune {
namespace {

using core::RoboTune;
using core::RoboTuneOptions;
using sparksim::SparkObjective;
using sparksim::WorkloadKind;

SparkObjective make_objective(WorkloadKind kind, int dataset,
                              std::uint64_t seed) {
  return SparkObjective(sparksim::ClusterSpec{},
                        sparksim::make_workload(kind, dataset),
                        sparksim::spark24_config_space(), seed);
}

RoboTuneOptions fast_options() {
  RoboTuneOptions options;
  options.selection.generic_samples = 60;
  options.selection.forest_trees = 80;
  options.selection.permutation_repeats = 3;
  options.bo.initial_samples = 12;
  options.bo.hyperfit_every = 8;
  return options;
}

TEST(IntegrationTest, MiniComparisonAllTunersComplete) {
  const int budget = 40;
  std::vector<std::unique_ptr<tuners::Tuner>> all;
  all.push_back(std::make_unique<tuners::RandomSearch>());
  all.push_back(std::make_unique<tuners::BestConfig>());
  all.push_back(std::make_unique<tuners::Gunther>());
  all.push_back(std::make_unique<RoboTune>(fast_options()));
  for (auto& tuner : all) {
    auto objective = make_objective(WorkloadKind::kPageRank, 1, 99);
    const auto result = tuner->tune(objective, budget, 7);
    EXPECT_EQ(result.history.size(), static_cast<std::size_t>(budget))
        << tuner->name();
    EXPECT_TRUE(result.found_any()) << tuner->name();
    EXPECT_LT(result.best_value_s(), 480.0) << tuner->name();
  }
}

TEST(IntegrationTest, RoboTuneSearchCostIsCompetitive) {
  // The headline cost claim (§5.3): ROBOTune's guard + BO avoid expensive
  // configurations.  At small budgets we only assert it is not worse than
  // the most expensive baseline.
  const int budget = 60;
  auto rs_obj = make_objective(WorkloadKind::kPageRank, 1, 123);
  tuners::RandomSearch rs;
  const auto rs_result = rs.tune(rs_obj, budget, 11);

  RoboTune robotune(fast_options());
  auto rt_obj = make_objective(WorkloadKind::kPageRank, 1, 123);
  const auto rt_result = robotune.tune(rt_obj, budget, 11);

  EXPECT_LT(rt_result.search_cost_s, rs_result.search_cost_s * 1.1);
}

TEST(IntegrationTest, MemoizationAcceleratesRepeatTuning) {
  // Fig. 6's mechanism: with memoized configs, the best-so-far curve must
  // start from a good value immediately after initialization.
  RoboTune tuner(fast_options());
  auto d1 = make_objective(WorkloadKind::kTeraSort, 1, 5);
  const auto first = tuner.tune_report(d1, 40, 3);

  auto d3 = make_objective(WorkloadKind::kTeraSort, 3, 6);
  const auto second = tuner.tune_report(d3, 40, 4);
  ASSERT_TRUE(second.used_memoized_configs);

  // After the 12 initial samples the repeat session is already within 25%
  // of its final best (the memoized configs land in the right region).
  const auto traj = second.tuning.best_trajectory();
  const double after_init = traj[11];
  const double final_best = traj.back();
  EXPECT_LT(after_init, final_best * 1.25);
}

TEST(IntegrationTest, ResponseSurfaceSnapshotThroughObserver) {
  // Fig. 9's machinery: the observer exposes a trained GP whose posterior
  // can be evaluated on a grid of the executor cores-memory plane.
  RoboTune tuner(fast_options());
  auto objective = make_objective(WorkloadKind::kPageRank, 1, 31);
  int snapshots = 0;
  tuner.tune_report(objective, 20, 9, [&](const core::BoObserverInfo& info) {
    if (info.iteration != 4) return;
    // Evaluate the GP mean over a small grid in the subspace.
    const std::size_t dims = info.choice->point.size();
    std::vector<std::vector<double>> grid;
    for (double a : {0.2, 0.5, 0.8}) {
      std::vector<double> p(dims, 0.5);
      p[0] = a;
      grid.push_back(p);
    }
    const auto means = info.gp->predict_mean(grid);
    EXPECT_EQ(means.size(), 3u);
    for (double m : means) EXPECT_TRUE(std::isfinite(m));
    ++snapshots;
  });
  EXPECT_EQ(snapshots, 1);
}

TEST(IntegrationTest, GuardReducesTailCost) {
  // Evaluations killed by the median guard are charged the threshold, so
  // no single ROBOTune evaluation after warm-up can cost more than the
  // static cap.
  RoboTune tuner(fast_options());
  auto objective = make_objective(WorkloadKind::kKMeans, 1, 77);
  const auto result = tuner.tune(objective, 40, 13);
  for (const auto& e : result.history) {
    EXPECT_LE(e.cost_s, 480.0 + 1e-9);
  }
}

TEST(IntegrationTest, SearchCostAccountingConsistent) {
  RoboTune tuner(fast_options());
  auto objective = make_objective(WorkloadKind::kTeraSort, 1, 55);
  const auto report = tuner.tune_report(objective, 30, 21);
  double history_cost = 0.0;
  for (const auto& e : report.tuning.history) history_cost += e.cost_s;
  EXPECT_NEAR(report.tuning.search_cost_s, history_cost, 1e-9);
  // Objective-side accounting covers selection + tuning.
  EXPECT_NEAR(objective.total_cost_s(),
              report.selection_cost_s + report.tuning.search_cost_s, 1e-6);
}

}  // namespace
}  // namespace robotune
