// Unit tests for src/obs: the metrics registry (lock-free shards,
// canonical-order merge, logical/runtime split), the span tracer and its
// JSONL / Chrome exporters, and the end-of-session summary rendering.
// Tests of live instrumentation are gated on ROBOTUNE_OBS_ENABLED; the
// pure-data and stub-behavior tests run in both build modes.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/summary.h"
#include "obs/trace.h"

namespace robotune::obs {
namespace {

// ------------------------------------------------- pure data (any mode) ----

TEST(ObsMetricsTest, RuntimePrefixSplitsSnapshots) {
  EXPECT_TRUE(is_runtime_metric("runtime.pool.tasks_executed"));
  EXPECT_FALSE(is_runtime_metric("evals.total"));
  EXPECT_FALSE(is_runtime_metric("run"));

  MetricsSnapshot snapshot;
  snapshot.counters["evals.total"] = 20;
  snapshot.counters["runtime.pool.tasks_executed"] = 7;
  snapshot.gauges["bo.selected_dims"] = 5.0;
  snapshot.gauges["runtime.exec.parallelism"] = 4.0;

  const auto logical = snapshot.logical();
  EXPECT_EQ(logical.counters.size(), 1u);
  EXPECT_EQ(logical.counters.count("evals.total"), 1u);
  EXPECT_EQ(logical.gauges.size(), 1u);

  const auto runtime = snapshot.runtime();
  EXPECT_EQ(runtime.counters.size(), 1u);
  EXPECT_EQ(runtime.counters.count("runtime.pool.tasks_executed"), 1u);
  EXPECT_EQ(runtime.gauges.size(), 1u);
}

TEST(ObsMetricsTest, SecondsBucketsAreStrictlyAscending) {
  const auto& bounds = seconds_buckets();
  ASSERT_GE(bounds.size(), 2u);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(ObsTraceTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(ObsTraceTest, ParseTraceFormat) {
  TraceFormat format = TraceFormat::kJsonl;
  EXPECT_TRUE(parse_trace_format("chrome", format));
  EXPECT_EQ(format, TraceFormat::kChrome);
  EXPECT_TRUE(parse_trace_format("jsonl", format));
  EXPECT_EQ(format, TraceFormat::kJsonl);
  EXPECT_FALSE(parse_trace_format("perfetto", format));
}

TEST(ObsSummaryTest, MetricsJsonHasBothSections) {
  MetricsSnapshot snapshot;
  snapshot.counters["evals.total"] = 3;
  snapshot.counters["runtime.pool.tasks_executed"] = 9;
  snapshot.histograms["evals.value_s"] =
      HistogramData{{1.0, 2.0}, {1, 1, 1}, 3};
  std::stringstream out;
  write_metrics_json(snapshot, out);
  const std::string doc = out.str();
  EXPECT_NE(doc.find("\"logical\""), std::string::npos);
  EXPECT_NE(doc.find("\"runtime\""), std::string::npos);
  EXPECT_NE(doc.find("\"evals.total\":3"), std::string::npos);
  EXPECT_NE(doc.find("\"runtime.pool.tasks_executed\":9"),
            std::string::npos);
  EXPECT_NE(doc.find("\"evals.value_s\""), std::string::npos);
}

TEST(ObsSummaryTest, RenderSummaryLabelsTheDeterminismSplit) {
  MetricsSnapshot snapshot;
  snapshot.counters["evals.total"] = 20;
  snapshot.counters["evals.ok"] = 18;
  snapshot.counters["evals.guard_kills"] = 2;
  std::vector<SpanRecord> spans;
  SpanRecord span;
  span.name = "gp_fit";
  span.dur_us = 1500;
  spans.push_back(span);
  const std::string table = render_summary(snapshot, spans);
  EXPECT_NE(table.find("logical metrics"), std::string::npos);
  EXPECT_NE(table.find("NON-deterministic"), std::string::npos);
  EXPECT_NE(table.find("guard kills"), std::string::npos);
  EXPECT_NE(table.find("gp_fit"), std::string::npos);
}

TEST(ObsSummaryTest, MetricsFileFailurePathLeavesNothing) {
  MetricsSnapshot snapshot;
  snapshot.counters["evals.total"] = 1;
  const std::string bad = "/nonexistent/dir/metrics.json";
  EXPECT_FALSE(write_metrics_file(snapshot, bad));
  EXPECT_FALSE(std::ifstream(bad).good());
  EXPECT_FALSE(std::ifstream(bad + ".tmp").good());

  const std::string good = "/tmp/robotune_obs_metrics_test.json";
  EXPECT_TRUE(write_metrics_file(snapshot, good));
  EXPECT_TRUE(std::ifstream(good).good());
  EXPECT_FALSE(std::ifstream(good + ".tmp").good());
  std::remove(good.c_str());
}

#if ROBOTUNE_OBS_ENABLED

// ------------------------------------------------ registry (compiled in) ----

TEST(ObsMetricsTest, CountersGaugesHistogramsAccumulate) {
  MetricsRegistry registry;
  registry.add("a.count");
  registry.add("a.count", 4);
  registry.set_gauge("g", 2.5);
  registry.set_gauge("g", 3.5);  // last write wins
  registry.observe("h", 0.4);
  registry.observe("h", 1.5);
  registry.observe("h", 1e9);  // overflow bucket

  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counters.at("a.count"), 5u);
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("g"), 3.5);
  const auto& h = snapshot.histograms.at("h");
  EXPECT_EQ(h.total, 3u);
  EXPECT_EQ(h.bounds, seconds_buckets());
  ASSERT_EQ(h.counts.size(), h.bounds.size() + 1);
  EXPECT_EQ(h.counts.front(), 1u);  // 0.4 <= 0.5
  EXPECT_EQ(h.counts.back(), 1u);   // 1e9 overflows
  std::uint64_t sum = 0;
  for (auto c : h.counts) sum += c;
  EXPECT_EQ(sum, h.total);
}

TEST(ObsMetricsTest, ShardsMergeAcrossThreads) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&registry]() {
      for (int i = 0; i < 1000; ++i) {
        registry.add("threads.count");
        registry.observe("threads.hist", 1.0);
      }
    });
  }
  for (auto& t : threads) t.join();  // happens-before the snapshot
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counters.at("threads.count"), 4000u);
  EXPECT_EQ(snapshot.histograms.at("threads.hist").total, 4000u);
}

TEST(ObsMetricsTest, ResetClearsEverything) {
  MetricsRegistry registry;
  registry.add("x");
  registry.set_gauge("y", 1.0);
  registry.observe("z", 2.0);
  EXPECT_FALSE(registry.snapshot().empty());
  registry.reset();
  EXPECT_TRUE(registry.snapshot().empty());
}

// -------------------------------------------------- tracer (compiled in) ----

TEST(ObsTraceTest, DisabledTracerRecordsNothing) {
  Tracer tracer;
  {
    Span span("quiet", "test", tracer);
    span.arg("k", std::int64_t{1});
  }
  EXPECT_TRUE(tracer.records().empty());
}

TEST(ObsTraceTest, NestedSpansCarryDepthAndArgs) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    Span outer("session", "test", tracer);
    outer.arg("tuner", "ROBOTune");
    {
      Span inner("iteration", "test", tracer);
      inner.arg("iter", 3);
      inner.arg("value", 1.5);
    }
  }
  const auto records = tracer.records();
  ASSERT_EQ(records.size(), 2u);
  // Sorted by start time: outer opened first.
  EXPECT_EQ(records[0].name, "session");
  EXPECT_EQ(records[0].depth, 0u);
  EXPECT_EQ(records[1].name, "iteration");
  EXPECT_EQ(records[1].depth, 1u);
  EXPECT_GE(records[0].dur_us, records[1].dur_us);
  ASSERT_EQ(records[1].args.size(), 2u);
  EXPECT_EQ(records[1].args[0].first, "iter");
  EXPECT_EQ(records[1].args[0].second, "3");
}

TEST(ObsTraceTest, WorkerThreadsGetStableTids) {
  Tracer tracer;
  tracer.set_enabled(true);
  { Span span("main", "test", tracer); }
  std::thread worker([&tracer]() {
    Span span("on_worker", "test", tracer);
  });
  worker.join();
  const auto records = tracer.records();
  ASSERT_EQ(records.size(), 2u);
  std::uint32_t main_tid = 0, worker_tid = 0;
  for (const auto& r : records) {
    (r.name == "main" ? main_tid : worker_tid) = r.tid;
  }
  EXPECT_NE(main_tid, worker_tid);
}

TEST(ObsTraceTest, JsonlExportOneObjectPerLine) {
  Tracer tracer;
  tracer.set_enabled(true);
  { Span span("a", "cat", tracer); }
  { Span span("b", "cat", tracer); }
  std::stringstream out;
  tracer.write(out, TraceFormat::kJsonl);
  std::string line;
  int lines = 0;
  while (std::getline(out, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"name\""), std::string::npos);
    EXPECT_NE(line.find("\"ts_us\""), std::string::npos);
    ++lines;
  }
  EXPECT_EQ(lines, 2);
}

TEST(ObsTraceTest, ChromeExportHasCompleteEventsAndThreadNames) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    Span span("phase", "core", tracer);
    span.arg("eval_index", std::uint64_t{7});
  }
  std::stringstream out;
  tracer.write(out, TraceFormat::kChrome);
  const std::string doc = out.str();
  EXPECT_EQ(doc.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(doc.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(doc.find("\"eval_index\":\"7\""), std::string::npos);
  EXPECT_EQ(doc.back(), '\n');
}

TEST(ObsTraceTest, ResetDropsRecordsAndRestartsEpoch) {
  Tracer tracer;
  tracer.set_enabled(true);
  { Span span("first", "t", tracer); }
  tracer.reset();
  EXPECT_TRUE(tracer.records().empty());
  { Span span("second", "t", tracer); }
  EXPECT_EQ(tracer.records().size(), 1u);
}

#else  // ROBOTUNE_OBS_ENABLED

// ------------------------------------------------------- stubs (OBS=OFF) ----

TEST(ObsStubTest, RegistrySnapshotAlwaysEmpty) {
  metrics().add("evals.total");
  metrics().set_gauge("g", 1.0);
  metrics().observe("h", 2.0);
  EXPECT_TRUE(metrics().snapshot().empty());
}

TEST(ObsStubTest, TracerProducesValidEmptyOutput) {
  tracer().set_enabled(true);  // no-op
  EXPECT_FALSE(tracer().enabled());
  { Span span("phase", "core"); }
  EXPECT_TRUE(tracer().records().empty());
  std::stringstream chrome;
  tracer().write(chrome, TraceFormat::kChrome);
  EXPECT_NE(chrome.str().find("\"traceEvents\""), std::string::npos);
  std::stringstream jsonl;
  tracer().write(jsonl, TraceFormat::kJsonl);
  EXPECT_TRUE(jsonl.str().empty());
}

#endif  // ROBOTUNE_OBS_ENABLED

TEST(ObsTraceTest, WriteFileFailurePathLeavesNothing) {
  const std::string bad = "/nonexistent/dir/trace.json";
  EXPECT_FALSE(tracer().write_file(bad, TraceFormat::kChrome));
  EXPECT_FALSE(std::ifstream(bad).good());
  EXPECT_FALSE(std::ifstream(bad + ".tmp").good());

  const std::string good = "/tmp/robotune_obs_trace_test.json";
  EXPECT_TRUE(tracer().write_file(good, TraceFormat::kChrome));
  EXPECT_TRUE(std::ifstream(good).good());
  EXPECT_FALSE(std::ifstream(good + ".tmp").good());
  std::remove(good.c_str());
}

}  // namespace
}  // namespace robotune::obs
