// Tests for the BO engine's option knobs (ablation switches, guard
// configuration, observation transforms) and additional GP edge cases.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "core/bo_engine.h"
#include "gp/gaussian_process.h"
#include "sparksim/objective.h"

namespace robotune::core {
namespace {

using sparksim::WorkloadKind;

sparksim::SparkObjective make_objective(std::uint64_t seed) {
  return sparksim::SparkObjective(sparksim::ClusterSpec{},
                                  sparksim::make_workload(
                                      WorkloadKind::kTeraSort, 1),
                                  sparksim::spark24_config_space(), seed);
}

std::vector<std::size_t> subspace() {
  const auto space = sparksim::spark24_config_space();
  return {*space.index_of("spark.executor.cores"),
          *space.index_of("spark.executor.memory.mb"),
          *space.index_of("spark.cores.max"),
          *space.index_of("spark.default.parallelism")};
}

BoOptions small_options() {
  BoOptions options;
  options.budget = 20;
  options.initial_samples = 8;
  options.hyperfit_every = 6;
  return options;
}

TEST(BoOptionsTest, ForcedAcquisitionIsRecorded) {
  for (auto kind : {gp::AcquisitionKind::kPI, gp::AcquisitionKind::kEI,
                    gp::AcquisitionKind::kLCB}) {
    auto objective = make_objective(7);
    BoOptions options = small_options();
    options.force_acquisition = kind;
    BoEngine engine(subspace(), sparksim::spark24_config_space().default_unit(),
                    options);
    const auto result = engine.run(objective);
    for (auto chosen : result.chosen_acquisitions) {
      EXPECT_EQ(chosen, kind);
    }
  }
}

TEST(BoOptionsTest, HedgeModeUsesMultipleAcquisitions) {
  auto objective = make_objective(8);
  BoOptions options = small_options();
  options.budget = 40;
  BoEngine engine(subspace(), sparksim::spark24_config_space().default_unit(),
                  options);
  const auto result = engine.run(objective);
  // Over 32 iterations the Hedge draw should pick at least two distinct
  // functions (probabilities start uniform).
  std::set<gp::AcquisitionKind> seen(result.chosen_acquisitions.begin(),
                                     result.chosen_acquisitions.end());
  EXPECT_GE(seen.size(), 2u);
}

TEST(BoOptionsTest, RandomInitializationStillWorks) {
  auto objective = make_objective(9);
  BoOptions options = small_options();
  options.lhs_initialization = false;
  BoEngine engine(subspace(), sparksim::spark24_config_space().default_unit(),
                  options);
  const auto result = engine.run(objective);
  EXPECT_EQ(result.tuning.history.size(), 20u);
  EXPECT_TRUE(result.tuning.found_any());
}

TEST(BoOptionsTest, LinearObservationsWork) {
  auto objective = make_objective(10);
  BoOptions options = small_options();
  options.log_observations = false;
  BoEngine engine(subspace(), sparksim::spark24_config_space().default_unit(),
                  options);
  const auto result = engine.run(objective);
  EXPECT_TRUE(result.tuning.found_any());
}

TEST(BoOptionsTest, HyperfitNeverStillRuns) {
  auto objective = make_objective(11);
  BoOptions options = small_options();
  options.hyperfit_every = 0;  // never refit hyperparameters
  BoEngine engine(subspace(), sparksim::spark24_config_space().default_unit(),
                  options);
  const auto result = engine.run(objective);
  EXPECT_EQ(result.tuning.history.size(), 20u);
}

TEST(BoOptionsTest, MedianGuardCapsLateEvaluationCosts) {
  auto objective = make_objective(12);
  BoOptions options = small_options();
  options.budget = 30;
  options.median_multiple = 1.5;  // aggressive
  BoEngine engine(subspace(), sparksim::spark24_config_space().default_unit(),
                  options);
  const auto result = engine.run(objective);
  // After the first 5 successes, no evaluation can cost more than
  // 1.5 x the median of all prior successes; just assert the cap was
  // computable and nothing exceeded the static cap.
  for (const auto& e : result.tuning.history) {
    EXPECT_LE(e.cost_s, options.static_threshold_s + 1e-9);
  }
}

TEST(BoOptionsTest, SeedsReproduceSessions) {
  auto a = make_objective(13);
  auto b = make_objective(13);
  BoOptions options = small_options();
  BoEngine e1(subspace(), sparksim::spark24_config_space().default_unit(),
              options);
  BoEngine e2(subspace(), sparksim::spark24_config_space().default_unit(),
              options);
  const auto r1 = e1.run(a);
  const auto r2 = e2.run(b);
  ASSERT_EQ(r1.tuning.history.size(), r2.tuning.history.size());
  for (std::size_t i = 0; i < r1.tuning.history.size(); ++i) {
    EXPECT_EQ(r1.tuning.history[i].unit, r2.tuning.history[i].unit);
    EXPECT_DOUBLE_EQ(r1.tuning.history[i].value_s,
                     r2.tuning.history[i].value_s);
  }
}

// -------------------------------------------------- extra GP edge cases ----

TEST(GpEdgeTest, DuplicateTrainingPointsSurviveViaJitter) {
  std::vector<std::vector<double>> x = {{0.5}, {0.5}, {0.5}, {0.2}};
  std::vector<double> y = {1.0, 1.1, 0.9, 2.0};
  gp::GaussianProcess model(gp::default_kernel(0.3, 1.0, 1e-4),
                            gp::GpOptions{false});
  EXPECT_NO_THROW(model.fit(x, y));
  const auto p = model.predict(std::vector<double>{0.5});
  EXPECT_NEAR(p.mean, 1.0, 0.2);
}

TEST(GpEdgeTest, ConstantTargetsProduceFlatPosterior) {
  std::vector<std::vector<double>> x = {{0.1}, {0.5}, {0.9}};
  std::vector<double> y = {5.0, 5.0, 5.0};
  gp::GaussianProcess model(gp::default_kernel(), gp::GpOptions{false});
  model.fit(x, y);
  EXPECT_NEAR(model.predict(std::vector<double>{0.3}).mean, 5.0, 1e-6);
}

TEST(GpEdgeTest, ArdFitShrinksIrrelevantDimension) {
  // y depends only on x0; after LML fitting, dim 1's length scale should
  // exceed dim 0's (longer scale = less relevant).
  Rng rng(5);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 40; ++i) {
    x.push_back({rng.uniform(), rng.uniform()});
    y.push_back(std::sin(6.0 * x.back()[0]));
  }
  gp::GpOptions options;
  options.optimize_hyperparameters = true;
  options.hyperparameter_restarts = 3;
  gp::GaussianProcess model(gp::ard_kernel(2, 0.5, 1.0, 1e-4), options, 3);
  model.fit(x, y);
  // Extract the fitted length scales out of the sum kernel's parameters:
  // [log l0, log l1, log s2, log noise].
  const auto params = model.kernel().log_params();
  ASSERT_EQ(params.size(), 4u);
  EXPECT_GT(params[1], params[0]);
}

TEST(GpEdgeTest, IncrementalAddPointMatchesBatchFit) {
  Rng rng(7);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 15; ++i) {
    x.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
    y.push_back(std::sin(4.0 * x.back()[0]) + x.back()[1]);
  }
  // Incremental: fit on the first 10, add the remaining 5.
  gp::GaussianProcess incremental(gp::ard_kernel(3, 0.4, 1.0, 1e-4),
                                  gp::GpOptions{false});
  incremental.fit({x.begin(), x.begin() + 10},
                  std::span<const double>(y.data(), 10));
  for (int i = 10; i < 15; ++i) {
    incremental.add_point(x[static_cast<std::size_t>(i)],
                          y[static_cast<std::size_t>(i)]);
  }
  // Batch: fit on everything at once with the same kernel.
  gp::GaussianProcess batch(gp::ard_kernel(3, 0.4, 1.0, 1e-4),
                            gp::GpOptions{false});
  batch.fit(x, y);
  for (double a : {0.1, 0.45, 0.8}) {
    const std::vector<double> q = {a, 0.3, 0.6};
    const auto pi = incremental.predict(q);
    const auto pb = batch.predict(q);
    EXPECT_NEAR(pi.mean, pb.mean, 1e-8);
    EXPECT_NEAR(pi.variance, pb.variance, 1e-8);
  }
  EXPECT_NEAR(incremental.log_marginal_likelihood(),
              batch.log_marginal_likelihood(), 1e-8);
}

TEST(GpEdgeTest, AddPointHandlesDuplicateViaFallback) {
  std::vector<std::vector<double>> x = {{0.2}, {0.8}};
  std::vector<double> y = {1.0, 2.0};
  gp::GaussianProcess model(gp::default_kernel(0.3, 1.0, 1e-8),
                            gp::GpOptions{false});
  model.fit(x, y);
  EXPECT_NO_THROW(model.add_point({0.2}, 1.05));  // near-duplicate
  EXPECT_EQ(model.num_points(), 3u);
  EXPECT_TRUE(std::isfinite(model.predict(std::vector<double>{0.5}).mean));
}

TEST(GpEdgeTest, AddPointBeforeFitThrows) {
  gp::GaussianProcess model;
  EXPECT_THROW(model.add_point({0.5}, 1.0), InvalidArgument);
}

TEST(GpEdgeTest, SinglePointFitPredicts) {
  std::vector<std::vector<double>> x = {{0.5, 0.5}};
  std::vector<double> y = {3.0};
  gp::GaussianProcess model(gp::default_kernel(), gp::GpOptions{false});
  model.fit(x, y);
  EXPECT_NEAR(model.predict(std::vector<double>{0.5, 0.5}).mean, 3.0, 1e-3);
}

}  // namespace
}  // namespace robotune::core
