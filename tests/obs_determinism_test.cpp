// Tier-1 observability determinism suite: instrumentation must be
// provably free of effect on tuning results.  Tracing ON vs OFF yields
// byte-identical sessions (history, best config, serialized journal) in
// detached mode and at --parallel 1 and 4; and the *logical* metrics
// section is identical for any worker count (wall-clock timing lives in
// the tracer and the `runtime.` section, which carry no such contract).
//
// The suite also runs — and must pass — with ROBOTUNE_OBS=OFF, where it
// degenerates to "empty snapshots are equal": the same code paths
// compile against the no-op stubs.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/persistence.h"
#include "core/robotune.h"
#include "exec/eval_scheduler.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sparksim/objective.h"

namespace robotune {
namespace {

constexpr int kBudget = 20;
constexpr std::uint64_t kSeed = 5;

sparksim::SparkObjective make_objective(bool with_faults) {
  sparksim::SparkObjective objective(
      sparksim::ClusterSpec{},
      sparksim::make_workload(sparksim::WorkloadKind::kTeraSort, 1),
      sparksim::spark24_config_space(), 13);
  if (with_faults) {
    sparksim::FaultProfile faults;
    EXPECT_TRUE(sparksim::FaultProfile::from_preset("moderate", faults));
    objective.set_fault_profile(faults);
    sparksim::RetryPolicy retry;
    retry.max_retries = 2;
    objective.set_retry_policy(retry);
  }
  return objective;
}

core::RoboTuneOptions fast_robotune(int batch_size) {
  core::RoboTuneOptions options;
  options.selection.generic_samples = 50;
  options.selection.forest_trees = 60;
  options.selection.permutation_repeats = 2;
  options.bo.initial_samples = 10;
  options.bo.hyperfit_every = 10;
  options.bo.batch_size = batch_size;
  return options;
}

struct SessionRun {
  tuners::TuningResult result;
  std::string journal_bytes;  ///< canonicalized + serialized checkpoint
};

/// One full ROBOTune session.  parallelism 0 = detached (no scheduler).
/// `acq_workers` / `acq_pool` configure the acquisition optimizer's
/// multi-start execution (see AcquisitionOptimizerOptions).
SessionRun run_session(int parallelism, bool with_faults, int acq_workers = 0,
                       ThreadPool* acq_pool = nullptr) {
  auto objective = make_objective(with_faults);
  core::RoboTuneOptions options = fast_robotune(/*batch_size=*/2);
  options.bo.hedge.optimizer.workers = acq_workers;
  options.bo.hedge.optimizer.pool = acq_pool;
  core::RoboTune tuner(options);
  core::SessionLog session;
  std::unique_ptr<exec::EvalScheduler> scheduler;
  if (parallelism > 0) {
    exec::SchedulerOptions options;
    options.parallelism = parallelism;
    scheduler = std::make_unique<exec::EvalScheduler>(options);
  }
  SessionRun run;
  run.result = tuner
                   .tune_report(objective, kBudget, kSeed, nullptr, &session,
                                scheduler.get())
                   .tuning;
  // Parallel sessions journal in completion order (scheduling-
  // dependent); canonical order is the deterministic artifact the
  // byte-comparison contract covers.
  core::canonicalize_journal(session.state);
  std::stringstream bytes;
  core::save_session(session.state, bytes);
  run.journal_bytes = bytes.str();
  return run;
}

void expect_runs_equal(const SessionRun& a, const SessionRun& b) {
  ASSERT_EQ(a.result.history.size(), b.result.history.size());
  for (std::size_t i = 0; i < a.result.history.size(); ++i) {
    EXPECT_EQ(a.result.history[i].unit, b.result.history[i].unit) << i;
    EXPECT_EQ(a.result.history[i].value_s, b.result.history[i].value_s) << i;
    EXPECT_EQ(a.result.history[i].cost_s, b.result.history[i].cost_s) << i;
    EXPECT_EQ(a.result.history[i].status, b.result.history[i].status) << i;
    EXPECT_EQ(a.result.history[i].attempts, b.result.history[i].attempts)
        << i;
  }
  EXPECT_EQ(a.result.best_index, b.result.best_index);
  EXPECT_EQ(a.result.best_unit(), b.result.best_unit());
  EXPECT_DOUBLE_EQ(a.result.search_cost_s, b.result.search_cost_s);
  EXPECT_EQ(a.journal_bytes, b.journal_bytes);  // byte-identical journal
}

class ObsDeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override {
    obs::tracer().set_enabled(false);
    obs::tracer().reset();
    obs::metrics().reset();
  }
};

// ------------------------------------------------ tracing on vs off ------

TEST_F(ObsDeterminismTest, TracingOnVsOffByteIdentical) {
  // 0 = detached, then scheduler mode at 1 and 4 workers.
  for (const int parallelism : {0, 1, 4}) {
    SCOPED_TRACE("parallelism " + std::to_string(parallelism));
    obs::tracer().set_enabled(false);
    const auto baseline = run_session(parallelism, /*with_faults=*/false);

    obs::tracer().reset();
    obs::tracer().set_enabled(true);
    obs::metrics().reset();
    const auto traced = run_session(parallelism, false);
    obs::tracer().set_enabled(false);

    expect_runs_equal(baseline, traced);
    if (obs::kCompiledIn) {
      // The traced run actually recorded something — this is not a
      // vacuous comparison against a disabled tracer.
      EXPECT_FALSE(obs::tracer().records().empty());
    }
  }
}

TEST_F(ObsDeterminismTest, TracingOnVsOffByteIdenticalUnderFaults) {
  for (const int parallelism : {1, 4}) {
    SCOPED_TRACE("parallelism " + std::to_string(parallelism));
    obs::tracer().set_enabled(false);
    const auto baseline = run_session(parallelism, /*with_faults=*/true);
    obs::tracer().reset();
    obs::tracer().set_enabled(true);
    const auto traced = run_session(parallelism, true);
    obs::tracer().set_enabled(false);
    expect_runs_equal(baseline, traced);
  }
}

// --------------------------------- logical metrics vs worker count -------

TEST_F(ObsDeterminismTest, LogicalMetricsIdenticalAcrossWorkerCounts) {
  std::vector<obs::MetricsSnapshot> logical;
  for (const int parallelism : {1, 4}) {
    obs::metrics().reset();
    run_session(parallelism, /*with_faults=*/true);
    // The scheduler's owned pool was joined when run_session returned,
    // so every worker shard write happens-before this snapshot.
    logical.push_back(obs::metrics().snapshot().logical());
  }
  EXPECT_EQ(logical[0], logical[1]);

  if (obs::kCompiledIn) {
    // Sanity: the logical section carries the session's event totals.
    EXPECT_EQ(logical[0].counters.at("evals.total"),
              static_cast<std::uint64_t>(kBudget));
    EXPECT_EQ(logical[0].counters.at("exec.evals_dispatched"),
              static_cast<std::uint64_t>(kBudget));
    EXPECT_GE(logical[0].counters.at("objective.attempts"),
              static_cast<std::uint64_t>(kBudget));
    EXPECT_EQ(logical[0].histograms.at("evals.value_s").total,
              static_cast<std::uint64_t>(kBudget));
    // And no scheduling-dependent name leaked into it.
    for (const auto& [name, value] : logical[0].counters) {
      EXPECT_FALSE(obs::is_runtime_metric(name)) << name;
    }
  } else {
    EXPECT_TRUE(logical[0].empty());
  }
}

// ----------------------- acquisition multi-start vs worker count ---------

TEST_F(ObsDeterminismTest, AcquisitionMultiStartInvariantAcrossWorkerCounts) {
  // The parallel multi-start acquisition optimizer (DESIGN.md §8) promises
  // byte-identical sessions AND identical logical metrics at any worker
  // count: inline, a 2-worker pool, a 4-worker pool.
  obs::metrics().reset();
  const auto inline_run = run_session(/*parallelism=*/1, /*with_faults=*/false,
                                      /*acq_workers=*/1);
  const auto inline_logical = obs::metrics().snapshot().logical();

  for (const std::size_t workers : {2u, 4u}) {
    SCOPED_TRACE("acq pool workers " + std::to_string(workers));
    ThreadPool pool(workers);
    obs::metrics().reset();
    const auto pooled = run_session(1, false, /*acq_workers=*/0, &pool);
    const auto pooled_logical = obs::metrics().snapshot().logical();
    expect_runs_equal(inline_run, pooled);
    EXPECT_EQ(inline_logical, pooled_logical);
  }

  if (obs::kCompiledIn) {
    // The hot path actually ran through the batched/gradient code: probe
    // screening and analytic acquisition gradients left their counters.
    EXPECT_GT(inline_logical.counters.at("acq.probes"), 0u);
    EXPECT_GT(inline_logical.counters.at("gp.predict_batch.calls"), 0u);
    EXPECT_GT(inline_logical.counters.at("gp.acq_grad"), 0u);
  }
}

// ------------------------------- per-session metric attribution ---------

TEST_F(ObsDeterminismTest, SessionScopedMetricsIdenticalAcrossWorkerCounts) {
  // The service layer runs every hosted session inside an
  // obs::ScopedSession, which additionally tallies logical metrics under
  // "session/<id>/".  That per-session section inherits the full
  // determinism contract: identical for any worker count, and equal to
  // the logical section of the same run executed with no session scope
  // at all (the scope is attribution, never perturbation).
  obs::metrics().reset();
  run_session(/*parallelism=*/1, /*with_faults=*/true);
  const auto unscoped = obs::metrics().snapshot().logical();

  std::vector<obs::MetricsSnapshot> scoped;
  for (const int parallelism : {1, 4}) {
    SCOPED_TRACE("parallelism " + std::to_string(parallelism));
    obs::metrics().reset();
    {
      obs::ScopedSession scope(42);
      run_session(parallelism, /*with_faults=*/true);
    }
    scoped.push_back(obs::metrics().snapshot().session(42));
  }
  EXPECT_EQ(scoped[0], scoped[1]);
  if (obs::kCompiledIn) {
    EXPECT_EQ(scoped[0], unscoped);
    EXPECT_EQ(scoped[0].counters.at("evals.total"),
              static_cast<std::uint64_t>(kBudget));
    // Scheduling-dependent names are never duplicated into a session
    // scope — the per-session section stays deterministic by
    // construction.
    for (const auto& [name, value] : scoped[0].counters) {
      EXPECT_FALSE(obs::is_runtime_metric(name)) << name;
    }
  } else {
    EXPECT_TRUE(scoped[0].empty());
  }
}

TEST_F(ObsDeterminismTest, ConcurrentSessionsKeepSeparateTallies) {
  // Two different sessions in one registry epoch: each section carries
  // exactly its own run's events even when both ran back-to-back (the
  // daemon's steady state, minus wall-clock interleaving which the
  // service_test covers end-to-end).
  obs::metrics().reset();
  {
    obs::ScopedSession scope(7);
    run_session(/*parallelism=*/1, /*with_faults=*/true);
  }
  {
    obs::ScopedSession scope(8);
    run_session(/*parallelism=*/4, /*with_faults=*/true);
  }
  const auto snapshot = obs::metrics().snapshot();
  EXPECT_EQ(snapshot.session(7), snapshot.session(8));
  if (obs::kCompiledIn) {
    EXPECT_EQ(snapshot.session(7).counters.at("evals.total"),
              static_cast<std::uint64_t>(kBudget));
    // The global logical section totals both sessions.
    EXPECT_EQ(snapshot.logical().counters.at("evals.total"),
              static_cast<std::uint64_t>(2 * kBudget));
  }
}

TEST_F(ObsDeterminismTest, RuntimeMetricsAreSeparatedNotCompared) {
  obs::metrics().reset();
  run_session(4, /*with_faults=*/false);
  const auto snapshot = obs::metrics().snapshot();
  if (obs::kCompiledIn) {
    // Worker-count-dependent facts exist, but only under `runtime.`.
    const auto runtime = snapshot.runtime();
    EXPECT_EQ(runtime.gauges.at("runtime.exec.parallelism"), 4.0);
    EXPECT_GE(runtime.counters.at("runtime.pool.workers_started"), 4u);
    for (const auto& [name, value] : runtime.counters) {
      EXPECT_TRUE(obs::is_runtime_metric(name)) << name;
    }
  } else {
    EXPECT_TRUE(snapshot.empty());
  }
}

}  // namespace
}  // namespace robotune
