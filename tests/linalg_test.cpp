// Unit tests for src/linalg: dense matrix ops, Cholesky, triangular solves.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "linalg/matrix.h"

namespace robotune::linalg {
namespace {

Matrix random_spd(std::size_t n, Rng& rng) {
  // A = B B^T + n I is symmetric positive definite.
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.uniform(-1, 1);
  }
  Matrix a = b * b.transposed();
  a.add_diagonal(static_cast<double>(n));
  return a;
}

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(MatrixTest, IdentityHasUnitDiagonal) {
  const Matrix id = Matrix::identity(4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(id(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, TransposeRoundTrip) {
  Rng rng(1);
  Matrix m(3, 5);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 5; ++j) m(i, j) = rng.uniform();
  }
  const Matrix tt = m.transposed().transposed();
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 5; ++j) EXPECT_DOUBLE_EQ(tt(i, j), m(i, j));
  }
}

TEST(MatrixTest, MatvecKnownResult) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(0, 2) = 3;
  m(1, 0) = 4;
  m(1, 1) = 5;
  m(1, 2) = 6;
  const std::vector<double> x = {1, 0, -1};
  const auto y = m.matvec(x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(MatrixTest, MatvecTransposedMatchesExplicitTranspose) {
  Rng rng(2);
  Matrix m(4, 3);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 3; ++j) m(i, j) = rng.uniform(-1, 1);
  }
  std::vector<double> x = {0.5, -1.0, 2.0, 0.25};
  const auto a = m.matvec_transposed(x);
  const auto b = m.transposed().matvec(x);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-14);
}

TEST(MatrixTest, MatmulAgainstIdentity) {
  Rng rng(3);
  Matrix m(3, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) m(i, j) = rng.uniform();
  }
  const Matrix prod = m * Matrix::identity(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(prod(i, j), m(i, j));
  }
}

TEST(MatrixTest, MatmulDimensionMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(a * b, InvalidArgument);
}

TEST(MatrixTest, MatvecDimensionMismatchThrows) {
  Matrix a(2, 3);
  std::vector<double> x(2, 0.0);
  EXPECT_THROW(a.matvec(x), InvalidArgument);
}

TEST(VectorOpsTest, DotAndNorm) {
  const std::vector<double> a = {3, 4};
  const std::vector<double> b = {1, 2};
  EXPECT_DOUBLE_EQ(dot(a, b), 11.0);
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
}

TEST(VectorOpsTest, AxpyAccumulates) {
  std::vector<double> a = {1, 1, 1};
  const std::vector<double> b = {1, 2, 3};
  axpy(2.0, b, a);
  EXPECT_DOUBLE_EQ(a[0], 3.0);
  EXPECT_DOUBLE_EQ(a[1], 5.0);
  EXPECT_DOUBLE_EQ(a[2], 7.0);
}

TEST(CholeskyTest, FactorReproducesMatrix) {
  Rng rng(5);
  const Matrix a = random_spd(8, rng);
  const Matrix l = cholesky(a);
  const Matrix reconstructed = l * l.transposed();
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_NEAR(reconstructed(i, j), a(i, j), 1e-9);
    }
  }
}

TEST(CholeskyTest, FactorIsLowerTriangular) {
  Rng rng(7);
  const Matrix l = cholesky(random_spd(6, rng));
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = i + 1; j < 6; ++j) EXPECT_DOUBLE_EQ(l(i, j), 0.0);
  }
}

TEST(CholeskyTest, SingularMatrixUsesJitter) {
  // Rank-deficient PSD matrix: ones everywhere.
  Matrix a(4, 4, 1.0);
  const Matrix l = cholesky(a, 1e-8);
  // Still produces a usable factor close to the original.
  const Matrix r = l * l.transposed();
  EXPECT_NEAR(r(0, 0), 1.0, 1e-3);
}

TEST(CholeskyTest, IndefiniteMatrixThrows) {
  Matrix a = Matrix::identity(3);
  a(1, 1) = -5.0;
  EXPECT_THROW(cholesky(a, 1e-10, 2), NumericalError);
}

TEST(CholeskyTest, NonSquareThrows) {
  Matrix a(2, 3);
  EXPECT_THROW(cholesky(a), InvalidArgument);
}

TEST(SolveTest, LowerTriangularSolve) {
  Matrix l(2, 2);
  l(0, 0) = 2.0;
  l(1, 0) = 1.0;
  l(1, 1) = 3.0;
  const std::vector<double> b = {4.0, 11.0};
  const auto y = solve_lower(l, b);
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
}

TEST(SolveTest, CholeskySolveMatchesDirectResidual) {
  Rng rng(11);
  const Matrix a = random_spd(10, rng);
  std::vector<double> b(10);
  for (auto& v : b) v = rng.uniform(-2, 2);
  const Matrix l = cholesky(a);
  const auto x = cholesky_solve(l, b);
  const auto ax = a.matvec(x);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
}

TEST(SolveTest, LowerTransposedSolveResidual) {
  Rng rng(13);
  const Matrix a = random_spd(6, rng);
  const Matrix l = cholesky(a);
  std::vector<double> y(6);
  for (auto& v : y) v = rng.uniform(-1, 1);
  const auto x = solve_lower_transposed(l, y);
  const auto check = l.transposed().matvec(x);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(check[i], y[i], 1e-9);
}

TEST(SolveTest, LogDetMatchesDiagonalProduct) {
  Rng rng(17);
  const Matrix a = random_spd(5, rng);
  const Matrix l = cholesky(a);
  double expected = 0.0;
  for (std::size_t i = 0; i < 5; ++i) expected += 2.0 * std::log(l(i, i));
  EXPECT_NEAR(log_det_from_cholesky(l), expected, 1e-12);
}

// ----------------------------------------------- hot-path equivalences ----
// The cache-blocked / batched kernels promise *bit-identical* results to
// their scalar counterparts (DESIGN.md §8); these tests pin that contract
// with exact floating-point comparisons.

TEST(MatmulBlockedTest, BitIdenticalToNaiveLoopAcrossTileBoundary) {
  // 70x90 * 90x130 spans more than one 64-column tile in every direction.
  Rng rng(23);
  Matrix a(70, 90);
  Matrix b(90, 130);
  for (double& v : a.data()) v = rng.uniform(-2, 2);
  for (double& v : b.data()) v = rng.uniform(-2, 2);
  const Matrix blocked = a * b;
  Matrix naive(70, 130);
  for (std::size_t i = 0; i < 70; ++i) {
    for (std::size_t k = 0; k < 90; ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < 130; ++j) naive(i, j) += aik * b(k, j);
    }
  }
  for (std::size_t i = 0; i < 70; ++i) {
    for (std::size_t j = 0; j < 130; ++j) {
      EXPECT_EQ(blocked(i, j), naive(i, j));  // exact, not approximate
    }
  }
}

TEST(MatmulBlockedTest, MultiplyTransposedMatchesExplicitTranspose) {
  Rng rng(29);
  Matrix a(7, 40);
  Matrix b(9, 40);
  for (double& v : a.data()) v = rng.uniform(-1, 1);
  for (double& v : b.data()) v = rng.uniform(-1, 1);
  const Matrix fused = a.multiply_transposed(b);
  const Matrix reference = a * b.transposed();
  ASSERT_EQ(fused.rows(), reference.rows());
  ASSERT_EQ(fused.cols(), reference.cols());
  for (std::size_t i = 0; i < fused.rows(); ++i) {
    for (std::size_t j = 0; j < fused.cols(); ++j) {
      EXPECT_EQ(fused(i, j), reference(i, j));
    }
  }
}

TEST(SolveTest, MultiRhsForwardSolveBitIdenticalToPerRhs) {
  Rng rng(31);
  const Matrix l = cholesky(random_spd(12, rng));
  Matrix rhs(5, 12);
  for (double& v : rhs.data()) v = rng.uniform(-3, 3);
  const Matrix batched = solve_lower_rows(l, rhs);
  for (std::size_t j = 0; j < 5; ++j) {
    const auto single = solve_lower(l, rhs.row(j));
    for (std::size_t i = 0; i < 12; ++i) {
      EXPECT_EQ(batched(j, i), single[i]);
    }
  }
}

TEST(SolveTest, MultiRhsBackwardSolveBitIdenticalToPerRhs) {
  Rng rng(37);
  const Matrix l = cholesky(random_spd(9, rng));
  Matrix rhs(4, 9);
  for (double& v : rhs.data()) v = rng.uniform(-3, 3);
  const Matrix batched = solve_lower_transposed_rows(l, rhs);
  for (std::size_t j = 0; j < 4; ++j) {
    const auto single = solve_lower_transposed(l, rhs.row(j));
    for (std::size_t i = 0; i < 9; ++i) {
      EXPECT_EQ(batched(j, i), single[i]);
    }
  }
}

TEST(SolveTest, SpanSolvesBitIdenticalToAllocatingOverloads) {
  Rng rng(41);
  const Matrix l = cholesky(random_spd(8, rng));
  std::vector<double> b(8);
  for (double& v : b) v = rng.uniform(-1, 1);
  std::vector<double> y(8), x(8);
  solve_lower(l, b, y);
  solve_lower_transposed(l, y, x);
  const auto y_ref = solve_lower(l, b);
  const auto x_ref = solve_lower_transposed(l, y_ref);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(y[i], y_ref[i]);
    EXPECT_EQ(x[i], x_ref[i]);
  }
}

TEST(CholeskyTest, JitterRetryWorkspaceLeavesNoResidue) {
  // A rank-one PSD matrix fails the jitter-free attempt partway through,
  // leaving garbage in the shared workspace; the successful retry must
  // produce exactly the factor a fresh allocation would have.  Computing
  // the reference on the pre-jittered matrix (whose first attempt
  // succeeds) exercises a workspace that was never dirtied.
  Matrix ones(5, 5, 1.0);
  const double jitter = 1e-8;
  const Matrix from_retry = cholesky(ones, jitter);
  Matrix jittered = ones;
  jittered.add_diagonal(jitter);
  const Matrix fresh = cholesky(jittered);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_EQ(from_retry(i, j), fresh(i, j));
    }
  }
  // The wipe must also clear the strict upper triangle.
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = i + 1; j < 5; ++j) {
      EXPECT_EQ(from_retry(i, j), 0.0);
    }
  }
}

// Property sweep: Cholesky solve residuals stay small across sizes.
class CholeskySizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CholeskySizeTest, SolveResidualSmall) {
  const std::size_t n = GetParam();
  Rng rng(100 + n);
  const Matrix a = random_spd(n, rng);
  std::vector<double> b(n);
  for (auto& v : b) v = rng.uniform(-1, 1);
  const auto x = cholesky_solve(cholesky(a), b);
  const auto ax = a.matvec(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySizeTest,
                         ::testing::Values(1, 2, 3, 5, 10, 20, 50, 100));

TEST(CholeskyRank1Test, UpdateMatchesDirectFactorization) {
  Rng rng(41);
  const std::size_t n = 12;
  const Matrix a = random_spd(n, rng);
  std::vector<double> v(n);
  for (auto& e : v) e = rng.uniform(-1, 1);

  Matrix l = cholesky(a);
  std::vector<double> work = v;
  cholesky_update_rank1(l, 0, work);

  Matrix updated = a;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) updated(i, j) += v[i] * v[j];
  }
  const Matrix direct = cholesky(updated);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      EXPECT_NEAR(l(i, j), direct(i, j), 1e-8) << i << "," << j;
    }
  }
}

TEST(CholeskyRank1Test, TrailingBlockUpdateLeavesLeadingRowsIntact) {
  Rng rng(42);
  const std::size_t n = 10;
  const std::size_t begin = 4;
  const Matrix a = random_spd(n, rng);
  Matrix l = cholesky(a);
  const Matrix before = l;
  std::vector<double> v(n - begin);
  for (auto& e : v) e = rng.uniform(-1, 1);
  std::vector<double> work = v;
  cholesky_update_rank1(l, begin, work);

  // Rows above `begin` (and the sub-diagonal columns left of it) are not
  // part of the trailing block and must not move.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      if (i < begin || j < begin) {
        EXPECT_EQ(l(i, j), before(i, j));
      }
    }
  }
  // The trailing block factors L33 L33ᵀ + v vᵀ.
  Matrix expected(n - begin, n - begin);
  for (std::size_t i = begin; i < n; ++i) {
    for (std::size_t j = begin; j <= i; ++j) {
      double sum = v[i - begin] * v[j - begin];
      for (std::size_t k = begin; k <= j; ++k) {
        sum += before(i, k) * before(j, k);
      }
      expected(i - begin, j - begin) = sum;
      expected(j - begin, i - begin) = sum;
    }
  }
  const Matrix direct = cholesky(expected, 0.0, 1);
  for (std::size_t i = begin; i < n; ++i) {
    for (std::size_t j = begin; j <= i; ++j) {
      EXPECT_NEAR(l(i, j), direct(i - begin, j - begin), 1e-8);
    }
  }
}

TEST(CholeskyRank1Test, DowndateInvertsUpdate) {
  Rng rng(43);
  const std::size_t n = 9;
  const Matrix a = random_spd(n, rng);
  std::vector<double> v(n);
  for (auto& e : v) e = rng.uniform(-1, 1);

  // Factor of A + vvᵀ, then downdate by v: must recover chol(A).
  Matrix plus = a;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) plus(i, j) += v[i] * v[j];
  }
  Matrix l = cholesky(plus, 0.0, 1);
  std::vector<double> work = v;
  cholesky_downdate_rank1(l, work);
  const Matrix direct = cholesky(a, 0.0, 1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      EXPECT_NEAR(l(i, j), direct(i, j), 1e-8);
    }
  }
}

TEST(CholeskyRank1Test, DowndateToIndefiniteThrows) {
  // Removing a vector larger than the matrix supports loses positive
  // definiteness mid-sweep.
  Matrix l = cholesky(Matrix::identity(4), 0.0, 1);
  std::vector<double> v(4, 10.0);
  EXPECT_THROW(cholesky_downdate_rank1(l, v), NumericalError);
}

TEST(MultiplyTransposedTest, BitIdenticalToNaiveDotLoop) {
  Rng rng(46);
  // Off-lane sizes exercise the scalar tail; the self-product takes the
  // mirrored Gram fast path.
  for (const auto [m, n, k] : {std::array<std::size_t, 3>{7, 5, 13},
                               {8, 8, 16},
                               {9, 9, 30}}) {
    Matrix a(m, k), b(n, k);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < k; ++j) a(i, j) = rng.uniform(-1, 1);
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < k; ++j) b(i, j) = rng.uniform(-1, 1);
    }
    const Matrix ab = a.multiply_transposed(b);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_EQ(ab(i, j), dot(a.row(i), b.row(j))) << i << "," << j;
      }
    }
    const Matrix aa = a.multiply_transposed(a);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        EXPECT_EQ(aa(i, j), dot(a.row(i), a.row(j))) << i << "," << j;
      }
    }
  }
}

TEST(MatrixCapacityTest, ReserveGrowShrinkKeepElementsBitIdentical) {
  Rng rng(44);
  Matrix m(3, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) m(i, j) = rng.uniform(-1, 1);
  }
  const Matrix original = m;

  m.reserve_square(8);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.square_capacity(), 8u);
  EXPECT_EQ(m.stride(), 8u);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(m(i, j), original(i, j));
  }

  // Grow to capacity without reallocation; new cells are writable.
  for (std::size_t n = 3; n < 8; ++n) {
    ASSERT_TRUE(m.grow_square());
    EXPECT_EQ(m.rows(), n + 1);
    for (std::size_t j = 0; j <= n; ++j) {
      m(n, j) = static_cast<double>(n * 100 + j);
      m(j, n) = 0.0;
    }
  }
  EXPECT_FALSE(m.grow_square());  // capacity exhausted
  EXPECT_EQ(m.rows(), 8u);

  m.shrink_square(3);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(m(i, j), original(i, j));
  }
  // Capacity survives the shrink: growth is possible again immediately.
  EXPECT_EQ(m.square_capacity(), 8u);
  EXPECT_TRUE(m.grow_square());
}

TEST(MatrixCapacityTest, StridedMatrixOpsStayCorrect) {
  // matvec / solve paths read through stride(); a reserved matrix must
  // behave exactly like its compact copy.
  Rng rng(45);
  const std::size_t n = 6;
  const Matrix a = random_spd(n, rng);
  Matrix l = cholesky(a);
  Matrix reserved = l;
  reserved.reserve_square(16);
  std::vector<double> b(n);
  for (auto& e : b) e = rng.uniform(-1, 1);

  const auto x_compact = solve_lower(l, b);
  const auto x_strided = solve_lower(reserved, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(x_compact[i], x_strided[i]);
  const auto y_compact = l.matvec(b);
  const auto y_strided = reserved.matvec(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(y_compact[i], y_strided[i]);
}

}  // namespace
}  // namespace robotune::linalg
