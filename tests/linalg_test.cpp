// Unit tests for src/linalg: dense matrix ops, Cholesky, triangular solves.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "linalg/matrix.h"

namespace robotune::linalg {
namespace {

Matrix random_spd(std::size_t n, Rng& rng) {
  // A = B B^T + n I is symmetric positive definite.
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.uniform(-1, 1);
  }
  Matrix a = b * b.transposed();
  a.add_diagonal(static_cast<double>(n));
  return a;
}

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(MatrixTest, IdentityHasUnitDiagonal) {
  const Matrix id = Matrix::identity(4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(id(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, TransposeRoundTrip) {
  Rng rng(1);
  Matrix m(3, 5);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 5; ++j) m(i, j) = rng.uniform();
  }
  const Matrix tt = m.transposed().transposed();
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 5; ++j) EXPECT_DOUBLE_EQ(tt(i, j), m(i, j));
  }
}

TEST(MatrixTest, MatvecKnownResult) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(0, 2) = 3;
  m(1, 0) = 4;
  m(1, 1) = 5;
  m(1, 2) = 6;
  const std::vector<double> x = {1, 0, -1};
  const auto y = m.matvec(x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(MatrixTest, MatvecTransposedMatchesExplicitTranspose) {
  Rng rng(2);
  Matrix m(4, 3);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 3; ++j) m(i, j) = rng.uniform(-1, 1);
  }
  std::vector<double> x = {0.5, -1.0, 2.0, 0.25};
  const auto a = m.matvec_transposed(x);
  const auto b = m.transposed().matvec(x);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-14);
}

TEST(MatrixTest, MatmulAgainstIdentity) {
  Rng rng(3);
  Matrix m(3, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) m(i, j) = rng.uniform();
  }
  const Matrix prod = m * Matrix::identity(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(prod(i, j), m(i, j));
  }
}

TEST(MatrixTest, MatmulDimensionMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(a * b, InvalidArgument);
}

TEST(MatrixTest, MatvecDimensionMismatchThrows) {
  Matrix a(2, 3);
  std::vector<double> x(2, 0.0);
  EXPECT_THROW(a.matvec(x), InvalidArgument);
}

TEST(VectorOpsTest, DotAndNorm) {
  const std::vector<double> a = {3, 4};
  const std::vector<double> b = {1, 2};
  EXPECT_DOUBLE_EQ(dot(a, b), 11.0);
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
}

TEST(VectorOpsTest, AxpyAccumulates) {
  std::vector<double> a = {1, 1, 1};
  const std::vector<double> b = {1, 2, 3};
  axpy(2.0, b, a);
  EXPECT_DOUBLE_EQ(a[0], 3.0);
  EXPECT_DOUBLE_EQ(a[1], 5.0);
  EXPECT_DOUBLE_EQ(a[2], 7.0);
}

TEST(CholeskyTest, FactorReproducesMatrix) {
  Rng rng(5);
  const Matrix a = random_spd(8, rng);
  const Matrix l = cholesky(a);
  const Matrix reconstructed = l * l.transposed();
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_NEAR(reconstructed(i, j), a(i, j), 1e-9);
    }
  }
}

TEST(CholeskyTest, FactorIsLowerTriangular) {
  Rng rng(7);
  const Matrix l = cholesky(random_spd(6, rng));
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = i + 1; j < 6; ++j) EXPECT_DOUBLE_EQ(l(i, j), 0.0);
  }
}

TEST(CholeskyTest, SingularMatrixUsesJitter) {
  // Rank-deficient PSD matrix: ones everywhere.
  Matrix a(4, 4, 1.0);
  const Matrix l = cholesky(a, 1e-8);
  // Still produces a usable factor close to the original.
  const Matrix r = l * l.transposed();
  EXPECT_NEAR(r(0, 0), 1.0, 1e-3);
}

TEST(CholeskyTest, IndefiniteMatrixThrows) {
  Matrix a = Matrix::identity(3);
  a(1, 1) = -5.0;
  EXPECT_THROW(cholesky(a, 1e-10, 2), NumericalError);
}

TEST(CholeskyTest, NonSquareThrows) {
  Matrix a(2, 3);
  EXPECT_THROW(cholesky(a), InvalidArgument);
}

TEST(SolveTest, LowerTriangularSolve) {
  Matrix l(2, 2);
  l(0, 0) = 2.0;
  l(1, 0) = 1.0;
  l(1, 1) = 3.0;
  const std::vector<double> b = {4.0, 11.0};
  const auto y = solve_lower(l, b);
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
}

TEST(SolveTest, CholeskySolveMatchesDirectResidual) {
  Rng rng(11);
  const Matrix a = random_spd(10, rng);
  std::vector<double> b(10);
  for (auto& v : b) v = rng.uniform(-2, 2);
  const Matrix l = cholesky(a);
  const auto x = cholesky_solve(l, b);
  const auto ax = a.matvec(x);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
}

TEST(SolveTest, LowerTransposedSolveResidual) {
  Rng rng(13);
  const Matrix a = random_spd(6, rng);
  const Matrix l = cholesky(a);
  std::vector<double> y(6);
  for (auto& v : y) v = rng.uniform(-1, 1);
  const auto x = solve_lower_transposed(l, y);
  const auto check = l.transposed().matvec(x);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(check[i], y[i], 1e-9);
}

TEST(SolveTest, LogDetMatchesDiagonalProduct) {
  Rng rng(17);
  const Matrix a = random_spd(5, rng);
  const Matrix l = cholesky(a);
  double expected = 0.0;
  for (std::size_t i = 0; i < 5; ++i) expected += 2.0 * std::log(l(i, i));
  EXPECT_NEAR(log_det_from_cholesky(l), expected, 1e-12);
}

// Property sweep: Cholesky solve residuals stay small across sizes.
class CholeskySizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CholeskySizeTest, SolveResidualSmall) {
  const std::size_t n = GetParam();
  Rng rng(100 + n);
  const Matrix a = random_spd(n, rng);
  std::vector<double> b(n);
  for (auto& v : b) v = rng.uniform(-1, 1);
  const auto x = cholesky_solve(cholesky(a), b);
  const auto ax = a.matvec(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySizeTest,
                         ::testing::Values(1, 2, 3, 5, 10, 20, 50, 100));

}  // namespace
}  // namespace robotune::linalg
