// Tests for the deterministic chaos harness: profile parsing, seeded
// decision sequences, and the behavior of the injection hook sites
// (Cholesky, journal write, thread-pool task).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/chaos.h"
#include "common/error.h"
#include "common/thread_pool.h"
#include "core/persistence.h"
#include "linalg/matrix.h"

namespace robotune {
namespace {

// Every test leaves the process-wide injector inert, so suites sharing
// the binary (and the no-chaos tests in other binaries) stay unaffected.
class ChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { chaos::injector().disarm(); }
};

TEST_F(ChaosTest, ProfileParsesPresets) {
  chaos::ChaosProfile p;
  ASSERT_TRUE(chaos::ChaosProfile::parse("none", p));
  EXPECT_FALSE(p.active());

  ASSERT_TRUE(chaos::ChaosProfile::parse("surrogate", p));
  EXPECT_DOUBLE_EQ(p.cholesky_failure, 1.0);
  EXPECT_DOUBLE_EQ(p.acq_opt_failure, 0.0);

  ASSERT_TRUE(chaos::ChaosProfile::parse("flaky", p));
  EXPECT_GT(p.cholesky_failure, 0.0);
  EXPECT_LT(p.cholesky_failure, 1.0);
  EXPECT_GT(p.journal_write_failure, 0.0);

  ASSERT_TRUE(chaos::ChaosProfile::parse("full", p));
  EXPECT_DOUBLE_EQ(p.cholesky_failure, 1.0);
  EXPECT_DOUBLE_EQ(p.acq_opt_failure, 1.0);
  EXPECT_DOUBLE_EQ(p.journal_write_failure, 1.0);
  // Pool-task exceptions are not survivable; no preset arms them.
  EXPECT_DOUBLE_EQ(p.pool_task_failure, 0.0);
}

TEST_F(ChaosTest, ProfileParsesRateLists) {
  chaos::ChaosProfile p;
  ASSERT_TRUE(
      chaos::ChaosProfile::parse("cholesky=0.25,acq=0.5,journal=1", p));
  EXPECT_DOUBLE_EQ(p.cholesky_failure, 0.25);
  EXPECT_DOUBLE_EQ(p.acq_opt_failure, 0.5);
  EXPECT_DOUBLE_EQ(p.journal_write_failure, 1.0);
  EXPECT_DOUBLE_EQ(p.pool_task_failure, 0.0);

  ASSERT_TRUE(chaos::ChaosProfile::parse("pool=0.125", p));
  EXPECT_DOUBLE_EQ(p.pool_task_failure, 0.125);

  EXPECT_FALSE(chaos::ChaosProfile::parse("bogus", p));
  EXPECT_FALSE(chaos::ChaosProfile::parse("cholesky=2.0", p));   // > 1
  EXPECT_FALSE(chaos::ChaosProfile::parse("cholesky=-0.1", p));  // < 0
  EXPECT_FALSE(chaos::ChaosProfile::parse("cholesky=x", p));
  EXPECT_FALSE(chaos::ChaosProfile::parse("frobnicate=0.5", p));
}

TEST_F(ChaosTest, UnconfiguredInjectorNeverFires) {
  EXPECT_FALSE(chaos::injector().enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(chaos::fail(chaos::Site::kCholesky));
    EXPECT_FALSE(chaos::fail_indexed(chaos::Site::kPoolTask, i));
  }
}

TEST_F(ChaosTest, SameSeedReplaysTheSameDecisionSequence) {
  if (!chaos::kCompiledIn) GTEST_SKIP() << "built with ROBOTUNE_CHAOS=OFF";
  chaos::ChaosProfile p;
  p.cholesky_failure = 0.5;
  const auto draw_sequence = [&](std::uint64_t seed) {
    chaos::injector().configure(p, seed);
    std::vector<bool> out;
    for (int i = 0; i < 64; ++i) {
      out.push_back(chaos::injector().should_fail(chaos::Site::kCholesky));
    }
    return out;
  };
  const auto a = draw_sequence(7);
  const auto b = draw_sequence(7);
  EXPECT_EQ(a, b);  // configure() resets the counters: exact replay
  const auto c = draw_sequence(8);
  EXPECT_NE(a, c);  // a different seed rolls different dice
  // A fractional rate is actually fractional.
  const auto hits = static_cast<std::size_t>(
      std::count(a.begin(), a.end(), true));
  EXPECT_GT(hits, 0u);
  EXPECT_LT(hits, a.size());
}

TEST_F(ChaosTest, IndexedDecisionsArePureFunctionsOfTheIndex) {
  if (!chaos::kCompiledIn) GTEST_SKIP() << "built with ROBOTUNE_CHAOS=OFF";
  chaos::ChaosProfile p;
  p.pool_task_failure = 0.5;
  chaos::injector().configure(p, 99);
  std::vector<bool> forward;
  for (std::uint64_t i = 0; i < 64; ++i) {
    forward.push_back(
        chaos::injector().should_fail(chaos::Site::kPoolTask, i));
  }
  std::vector<bool> reverse(64);
  for (std::uint64_t i = 64; i-- > 0;) {
    reverse[i] = chaos::injector().should_fail(chaos::Site::kPoolTask, i);
  }
  EXPECT_EQ(forward, reverse);  // order of asking cannot change the answer
}

TEST_F(ChaosTest, RateEndpointsAreExact) {
  if (!chaos::kCompiledIn) GTEST_SKIP() << "built with ROBOTUNE_CHAOS=OFF";
  chaos::ChaosProfile p;
  p.cholesky_failure = 1.0;
  chaos::injector().configure(p, 1);
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(chaos::injector().should_fail(chaos::Site::kCholesky));
    EXPECT_FALSE(chaos::injector().should_fail(chaos::Site::kAcqOpt));
  }
  EXPECT_EQ(chaos::injector().injections(chaos::Site::kCholesky), 16u);
  EXPECT_EQ(chaos::injector().injections(chaos::Site::kAcqOpt), 0u);
  chaos::injector().disarm();
  EXPECT_FALSE(chaos::injector().enabled());
  EXPECT_FALSE(chaos::injector().should_fail(chaos::Site::kCholesky));
}

TEST_F(ChaosTest, CholeskyHookThrowsTheRealRecoveryException) {
  if (!chaos::kCompiledIn) GTEST_SKIP() << "built with ROBOTUNE_CHAOS=OFF";
  linalg::Matrix identity(2, 2);
  identity(0, 0) = identity(1, 1) = 1.0;
  chaos::ChaosProfile p;
  p.cholesky_failure = 1.0;
  chaos::injector().configure(p, 3);
  // A forced failure is indistinguishable from a genuinely non-PD matrix.
  EXPECT_THROW(linalg::cholesky(identity), NumericalError);
  chaos::injector().disarm();
  EXPECT_NO_THROW(linalg::cholesky(identity));
}

TEST_F(ChaosTest, JournalWriteHookFailsWithoutTouchingTheFile) {
  if (!chaos::kCompiledIn) GTEST_SKIP() << "built with ROBOTUNE_CHAOS=OFF";
  const std::string path = "/tmp/robotune_chaos_journal_test.ckpt";
  std::remove(path.c_str());
  core::SessionCheckpoint session;
  session.workload = "W";
  ASSERT_TRUE(core::save_session_file(session, path));

  chaos::ChaosProfile p;
  p.journal_write_failure = 1.0;
  chaos::injector().configure(p, 3);
  session.workload = "X";
  EXPECT_FALSE(core::save_session_file(session, path));
  chaos::injector().disarm();

  // The previous checkpoint survives the simulated I/O error untouched.
  core::SessionCheckpoint loaded;
  ASSERT_TRUE(core::load_session_file(path, loaded));
  EXPECT_EQ(loaded.workload, "W");
  std::remove(path.c_str());
}

TEST_F(ChaosTest, PoolTaskFailurePropagatesIdenticallyAtAnyWorkerCount) {
  if (!chaos::kCompiledIn) GTEST_SKIP() << "built with ROBOTUNE_CHAOS=OFF";
  chaos::ChaosProfile p;
  p.pool_task_failure = 0.3;
  constexpr std::size_t kTasks = 32;

  // The injected failure set is keyed on the task index, so it is the
  // same for the inline single-worker path and the pooled path; wait_all
  // rethrows the lowest failing index either way.
  chaos::injector().configure(p, 11);
  std::vector<bool> expected;
  for (std::uint64_t i = 0; i < kTasks; ++i) {
    expected.push_back(
        chaos::injector().should_fail(chaos::Site::kPoolTask, i));
  }
  ASSERT_TRUE(std::count(expected.begin(), expected.end(), true) > 0)
      << "seed produced no failures; pick another seed";

  for (const std::size_t workers : {1u, 4u}) {
    ThreadPool pool(workers);
    chaos::injector().configure(p, 11);
    std::string what;
    try {
      pool.parallel_for(kTasks, [](std::size_t) {});
      FAIL() << "expected an injected ChaosError (workers=" << workers
             << ")";
    } catch (const chaos::ChaosError& e) {
      what = e.what();
    }
    EXPECT_EQ(what, "parallel_for: injected task failure");
  }
}

}  // namespace
}  // namespace robotune
